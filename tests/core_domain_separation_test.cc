#include "core/domain_separation.h"

#include <optional>

#include "gtest/gtest.h"

namespace lruk {
namespace {

// Two domains: even pages -> 0, odd pages -> 1.
DomainSeparationOptions EvenOdd(size_t even_cap, size_t odd_cap) {
  DomainSeparationOptions options;
  options.classifier = [](PageId p) { return static_cast<uint32_t>(p % 2); };
  options.domain_capacities = {even_cap, odd_cap};
  return options;
}

TEST(DomainSeparationTest, PagesLandInTheirDomain) {
  DomainSeparationPolicy ds(EvenOdd(4, 4));
  ds.Admit(0, AccessType::kRead);
  ds.Admit(1, AccessType::kRead);
  ds.Admit(2, AccessType::kRead);
  EXPECT_EQ(ds.DomainResidentCount(0), 2u);
  EXPECT_EQ(ds.DomainResidentCount(1), 1u);
  EXPECT_EQ(ds.ResidentCount(), 3u);
}

TEST(DomainSeparationTest, DomainsCompeteOnlyInternally) {
  // The defining property: an overflowing domain evicts its own pages even
  // while the other domain has free frames.
  DomainSeparationPolicy ds(EvenOdd(2, 4));
  ds.Admit(0, AccessType::kRead);
  ds.Admit(2, AccessType::kRead);
  ds.Admit(4, AccessType::kRead);  // Even domain full: evicts LRU (0).
  EXPECT_FALSE(ds.IsResident(0));
  EXPECT_TRUE(ds.IsResident(2));
  EXPECT_TRUE(ds.IsResident(4));
  EXPECT_EQ(ds.DomainResidentCount(0), 2u);
  auto internal = ds.TakeInternalEvictions();
  ASSERT_EQ(internal.size(), 1u);
  EXPECT_EQ(internal[0], 0u);
  EXPECT_TRUE(ds.TakeInternalEvictions().empty());  // Drained.
}

TEST(DomainSeparationTest, EvictPrefersPendingDomain) {
  DomainSeparationPolicy ds(EvenOdd(2, 2));
  ds.Admit(0, AccessType::kRead);
  ds.Admit(2, AccessType::kRead);
  ds.Admit(1, AccessType::kRead);
  ds.Admit(3, AccessType::kRead);  // Total = 4 = sum of capacities.
  ds.PrepareAdmit(5);              // Odd page coming in.
  auto victim = ds.Evict();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim % 2, 1u) << "victim must come from the odd domain";
  EXPECT_EQ(*victim, 1u) << "LRU within the domain";
}

TEST(DomainSeparationTest, LruWithinDomain) {
  DomainSeparationPolicy ds(EvenOdd(3, 3));
  ds.Admit(0, AccessType::kRead);
  ds.Admit(2, AccessType::kRead);
  ds.Admit(4, AccessType::kRead);
  ds.RecordAccess(0, AccessType::kRead);  // Refresh 0.
  ds.Admit(6, AccessType::kRead);         // Evicts 2, not 0.
  EXPECT_TRUE(ds.IsResident(0));
  EXPECT_FALSE(ds.IsResident(2));
  auto internal = ds.TakeInternalEvictions();
  ASSERT_EQ(internal.size(), 1u);
  EXPECT_EQ(internal[0], 2u);
}

TEST(DomainSeparationTest, PinningForwardsToDomains) {
  DomainSeparationPolicy ds(EvenOdd(2, 2));
  ds.Admit(0, AccessType::kRead);
  ds.Admit(2, AccessType::kRead);
  ds.SetEvictable(0, false);
  EXPECT_EQ(ds.EvictableCount(), 1u);
  ds.PrepareAdmit(4);
  auto victim = ds.Evict();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_TRUE(ds.IsResident(0));
}

TEST(DomainSeparationTest, RemoveAndEnumeration) {
  DomainSeparationPolicy ds(EvenOdd(4, 4));
  for (PageId p = 0; p < 6; ++p) ds.Admit(p, AccessType::kRead);
  ds.Remove(3);
  EXPECT_FALSE(ds.IsResident(3));
  size_t seen = 0;
  ds.ForEachResident([&seen](PageId) { ++seen; });
  EXPECT_EQ(seen, 5u);
}

TEST(DomainSeparationTest, ApproximatesTunedPoolsOnTwoPoolWorkload) {
  // Sanity: on alternating hot/cold references with the ideal partition,
  // the hot domain reaches a perfect hit ratio after the fill phase —
  // the Section 1.1 "buffer all the B-tree leaf pages" configuration.
  constexpr PageId kHotPages = 8;
  DomainSeparationOptions options;
  options.classifier = [](PageId p) {
    return static_cast<uint32_t>(p < kHotPages ? 0 : 1);
  };
  options.domain_capacities = {kHotPages, 4};
  DomainSeparationPolicy ds(options);
  // Fill the hot domain.
  for (PageId p = 0; p < kHotPages; ++p) ds.Admit(p, AccessType::kRead);
  // Stream cold pages through while touching hot pages: hot never evicted.
  for (int i = 0; i < 200; ++i) {
    ds.RecordAccess(i % kHotPages, AccessType::kRead);
    PageId cold = 1000 + i;
    ds.Admit(cold, AccessType::kRead);
  }
  for (PageId p = 0; p < kHotPages; ++p) {
    EXPECT_TRUE(ds.IsResident(p)) << "hot page " << p;
  }
  EXPECT_EQ(ds.DomainResidentCount(1), 4u);
}

}  // namespace
}  // namespace lruk
