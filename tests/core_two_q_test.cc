#include "core/two_q.h"

#include <optional>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TwoQOptions Opts(size_t capacity, double kin = 0.25, double kout = 0.5) {
  TwoQOptions o;
  o.capacity = capacity;
  o.kin_fraction = kin;
  o.kout_fraction = kout;
  return o;
}

TEST(TwoQTest, NewPagesEnterA1in) {
  TwoQPolicy q(Opts(8));
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);
  EXPECT_EQ(q.A1inSize(), 2u);
  EXPECT_EQ(q.AmSize(), 0u);
}

TEST(TwoQTest, A1inEvictionGoesToGhost) {
  TwoQPolicy q(Opts(8, /*kin=*/0.25, /*kout=*/0.5));  // kin = 2, kout = 4.
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);
  q.Admit(3, AccessType::kRead);  // |A1in| = 3 > kin.
  auto v = q.Evict();
  ASSERT_EQ(v, std::optional<PageId>(1));  // FIFO tail of A1in.
  EXPECT_TRUE(q.InGhost(1));
  EXPECT_EQ(q.A1outSize(), 1u);
}

TEST(TwoQTest, GhostHitPromotesToAm) {
  TwoQPolicy q(Opts(8));
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);
  q.Admit(3, AccessType::kRead);
  ASSERT_EQ(q.Evict(), std::optional<PageId>(1));  // 1 -> ghost.
  q.Admit(1, AccessType::kRead);                   // Refault from ghost.
  EXPECT_EQ(q.AmSize(), 1u);
  EXPECT_FALSE(q.InGhost(1));
}

TEST(TwoQTest, A1inHitDoesNotPromote) {
  // 2Q's correlated-reference defense: a hit while still in A1in neither
  // moves the page nor promotes it.
  TwoQPolicy q(Opts(8));
  q.Admit(1, AccessType::kRead);
  q.RecordAccess(1, AccessType::kRead);
  q.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(q.A1inSize(), 1u);
  EXPECT_EQ(q.AmSize(), 0u);
}

TEST(TwoQTest, AmIsLruOrdered) {
  TwoQPolicy q(Opts(4, /*kin=*/0.25, /*kout=*/1.0));  // kin = 1, kout = 4.
  // Route pages 1 and 2 through the ghost into Am.
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);   // |A1in| = 2 > 1 on next eviction.
  ASSERT_EQ(q.Evict(), std::optional<PageId>(1));
  ASSERT_EQ(q.Evict(), std::optional<PageId>(2));
  q.Admit(1, AccessType::kRead);   // Ghost hit -> Am.
  q.Admit(2, AccessType::kRead);   // Ghost hit -> Am.
  ASSERT_EQ(q.AmSize(), 2u);
  q.RecordAccess(1, AccessType::kRead);  // 1 becomes most recent.
  EXPECT_EQ(q.Evict(), std::optional<PageId>(2));  // Am LRU tail.
}

TEST(TwoQTest, GhostQueueIsBounded) {
  TwoQPolicy q(Opts(4, /*kin=*/0.25, /*kout=*/0.5));  // kout = 2.
  for (PageId p = 0; p < 10; ++p) {
    q.Admit(p, AccessType::kRead);
    q.Evict();
  }
  EXPECT_LE(q.A1outSize(), 2u);
}

TEST(TwoQTest, PinnedPagesAreNotEvicted) {
  TwoQPolicy q(Opts(8));
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);
  q.SetEvictable(1, false);
  EXPECT_EQ(q.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(q.Evict(), std::nullopt);
}

TEST(TwoQTest, RemoveFromEitherQueue) {
  TwoQPolicy q(Opts(8, /*kin=*/0.25, /*kout=*/1.0));
  q.Admit(1, AccessType::kRead);
  q.Admit(2, AccessType::kRead);
  q.Admit(3, AccessType::kRead);
  ASSERT_EQ(q.Evict(), std::optional<PageId>(1));
  q.Admit(1, AccessType::kRead);  // In Am now.
  q.Remove(1);                    // Remove from Am.
  q.Remove(2);                    // Remove from A1in.
  EXPECT_EQ(q.ResidentCount(), 1u);
  EXPECT_EQ(q.Evict(), std::optional<PageId>(3));
}

TEST(TwoQTest, ScanResistance) {
  // A long one-touch scan must not displace the established hot set in Am.
  TwoQPolicy q(Opts(10, /*kin=*/0.2, /*kout=*/0.5));
  // Build a hot set {100, 101} in Am via ghost refaults.
  q.Admit(100, AccessType::kRead);
  q.Admit(101, AccessType::kRead);
  q.Evict();
  q.Evict();
  q.Admit(100, AccessType::kRead);
  q.Admit(101, AccessType::kRead);
  ASSERT_EQ(q.AmSize(), 2u);
  // Scan 50 cold pages with evictions keeping residency at 10.
  for (PageId p = 0; p < 50; ++p) {
    if (q.ResidentCount() == 10) {
      auto v = q.Evict();
      ASSERT_TRUE(v.has_value());
      ASSERT_NE(*v, 100u);
      ASSERT_NE(*v, 101u);
    }
    q.Admit(p, AccessType::kRead);
  }
  EXPECT_TRUE(q.IsResident(100));
  EXPECT_TRUE(q.IsResident(101));
}

}  // namespace
}  // namespace lruk
