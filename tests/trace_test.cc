#include "workload/trace.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(ParseTraceTest, ParsesPagesAndTypes) {
  auto refs = ParseTrace("1 R\n2 W\n3\n");
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  ASSERT_EQ(refs->size(), 3u);
  EXPECT_EQ((*refs)[0].page, 1u);
  EXPECT_EQ((*refs)[0].type, AccessType::kRead);
  EXPECT_EQ((*refs)[1].page, 2u);
  EXPECT_EQ((*refs)[1].type, AccessType::kWrite);
  EXPECT_EQ((*refs)[2].page, 3u);
  EXPECT_EQ((*refs)[2].type, AccessType::kRead);
}

TEST(ParseTraceTest, SkipsCommentsAndBlanks) {
  auto refs = ParseTrace("# header\n\n  \n5 r\n# trailing\n7 w\n");
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 2u);
  EXPECT_EQ((*refs)[0].page, 5u);
  EXPECT_EQ((*refs)[1].page, 7u);
  EXPECT_EQ((*refs)[1].type, AccessType::kWrite);
}

TEST(ParseTraceTest, ParsesProcessIds) {
  auto refs = ParseTrace("1 R 3\n2 W 0\n9 R\n");
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  ASSERT_EQ(refs->size(), 3u);
  EXPECT_EQ((*refs)[0].process, 3u);
  EXPECT_EQ((*refs)[1].process, 0u);
  EXPECT_EQ((*refs)[2].process, 0u);  // Default when omitted.
}

TEST(ParseTraceTest, RejectsBadProcessId) {
  auto refs = ParseTrace("1 R xyz\n");
  ASSERT_FALSE(refs.ok());
  EXPECT_EQ(refs.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseTraceTest, RejectsBadAccessType) {
  auto refs = ParseTrace("1 X\n");
  ASSERT_FALSE(refs.ok());
  EXPECT_EQ(refs.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseTraceTest, RejectsNonNumericPage) {
  auto refs = ParseTrace("abc R\n");
  ASSERT_FALSE(refs.ok());
}

TEST(ParseTraceTest, RejectsEmptyTrace) {
  auto refs = ParseTrace("# nothing here\n");
  ASSERT_FALSE(refs.ok());
}

TEST(TraceWorkloadTest, ReplaysAndWraps) {
  TraceWorkload gen({{1, AccessType::kRead},
                     {5, AccessType::kWrite},
                     {3, AccessType::kRead}});
  EXPECT_EQ(gen.NumPages(), 6u);  // Max page id + 1.
  EXPECT_EQ(gen.size(), 3u);
  EXPECT_EQ(gen.Next().page, 1u);
  EXPECT_EQ(gen.Next().page, 5u);
  EXPECT_FALSE(gen.exhausted());
  EXPECT_EQ(gen.Next().page, 3u);
  EXPECT_TRUE(gen.exhausted());
  EXPECT_EQ(gen.Next().page, 1u);  // Wraps.
  gen.Reset();
  EXPECT_EQ(gen.Next().page, 1u);
  EXPECT_FALSE(gen.exhausted());
}

TEST(TraceFileTest, RoundTripsThroughDisk) {
  std::string path = ::testing::TempDir() + "/lruk_trace_roundtrip.txt";
  std::vector<PageRef> refs = {{10, AccessType::kRead, 1},
                               {20, AccessType::kWrite, 2},
                               {10, AccessType::kRead, 0}};
  ASSERT_TRUE(WriteTraceFile(path, refs).ok());
  auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ((*loaded)[i].page, refs[i].page);
    EXPECT_EQ((*loaded)[i].type, refs[i].type);
    EXPECT_EQ((*loaded)[i].process, refs[i].process);
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileFailsCleanly) {
  auto loaded = ReadTraceFile("/nonexistent/dir/trace.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lruk
