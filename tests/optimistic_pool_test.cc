// The optimistic hit path (BufferPoolOptions::optimistic_hits),
// deterministic half (the threaded half lives in
// optimistic_concurrency_test.cc).
//
// Coverage layers:
//  * PageTable units — insert/find/erase round-trips against a reference
//    map under heavy id reuse (backward-shift clusters), version growth,
//    LockBucket forcing optimistic readers to fall back, UnlockErased
//    removing the mapping, OptimisticFind/Validate agreeing with the
//    latched surface when nothing is mutating.
//  * Differential battery — with optimistic_hits ON, both pools produce
//    BYTE-IDENTICAL single-threaded behaviour to the latched path over the
//    same 20k-op mixed workload async_io_test.cc uses: same counters, same
//    victim sequence, same IoStats, same residency, same disk images —
//    with the async stack (inline dispatcher + flusher) off and on, and
//    with the auto-bumped default batch_capacity.
//  * Zero-mutex hit — a warm optimistic fetch/unpin pair acquires the pool
//    latch ZERO times, asserted via the latch_acquires counter.
//  * Readahead interaction — readahead and the optimistic fast path
//    compose on both pool shapes (the voting detector's Observe is
//    wait-free), staying byte-identical to the latched pool with the
//    same detector; a non-triggering warm hit stays at zero latches.
//  * StatsSnapshot — the lock-free snapshot equals the draining stats()
//    when the pool is quiescent.
//  * Error paths — optimistic UnpinPage/DeletePage report the same status
//    codes as the latched pool (NotFound, InvalidArgument), pinned pages
//    are never victims (pin counts as ground truth), ResourceExhausted
//    when every frame is pinned, and id reuse after delete works.

#include <iterator>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/page_table.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "differential_harness.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

using difftest::AllocateDb;
using difftest::DiffScenarioConfig;
using difftest::DiffScenarioResult;
using difftest::ExpectPoolStatsEq;
using difftest::ExpectScenarioEq;
using difftest::RunDiffScenario;

// ---------------------------------------------------------------------------
// PageTable units.

TEST(OptimisticPageTableTest, InsertFindEraseRoundTrip) {
  PageTable table(16);
  EXPECT_GE(table.bucket_count(), 32u);  // Load factor <= 1/2.
  EXPECT_EQ(table.size(), 0u);

  for (PageId p = 0; p < 16; ++p) table.Insert(p, static_cast<FrameId>(p * 7));
  EXPECT_EQ(table.size(), 16u);
  for (PageId p = 0; p < 16; ++p) {
    FrameId frame = kInvalidFrameId;
    ASSERT_TRUE(table.Find(p, &frame));
    EXPECT_EQ(frame, static_cast<FrameId>(p * 7));
    EXPECT_TRUE(table.contains(p));
  }
  FrameId frame = kInvalidFrameId;
  EXPECT_FALSE(table.Find(99, &frame));
  EXPECT_FALSE(table.contains(99));

  for (PageId p = 0; p < 16; p += 2) table.Erase(p);
  EXPECT_EQ(table.size(), 8u);
  for (PageId p = 0; p < 16; ++p) {
    EXPECT_EQ(table.contains(p), p % 2 == 1) << "page " << p;
  }
}

// Backward-shift deletion against a reference map: a small table under
// heavy id reuse keeps probe clusters dense, so erases constantly relocate
// entries. Every surviving mapping must stay findable — by the latched
// probe AND by the optimistic one (single-threaded, a stable table must
// always yield consistent snapshots that validate).
TEST(OptimisticPageTableTest, BackwardShiftChurnMatchesReferenceMap) {
  constexpr size_t kCapacity = 12;
  PageTable table(kCapacity);
  std::unordered_map<PageId, FrameId> reference;
  RandomEngine rng(/*seed=*/20260809);

  for (int step = 0; step < 4000; ++step) {
    bool insert = reference.size() < kCapacity &&
                  (reference.empty() || rng.NextBernoulli(0.5));
    if (insert) {
      PageId p = rng.NextBounded(64);  // Narrow id range: reuse + clustering.
      if (reference.contains(p)) continue;
      FrameId frame = static_cast<FrameId>(rng.NextBounded(kCapacity));
      table.Insert(p, frame);
      reference[p] = frame;
    } else {
      size_t skip = rng.NextBounded(reference.size());
      auto it = reference.begin();
      std::advance(it, skip);
      table.Erase(it->first);
      reference.erase(it);
    }
    ASSERT_EQ(table.size(), reference.size());
    for (const auto& [p, frame] : reference) {
      FrameId found = kInvalidFrameId;
      ASSERT_TRUE(table.Find(p, &found)) << "page " << p;
      ASSERT_EQ(found, frame);
      PageTable::Snapshot snap;
      ASSERT_TRUE(table.OptimisticFind(p, &snap)) << "page " << p;
      ASSERT_EQ(snap.frame, frame);
      ASSERT_TRUE(table.Validate(snap));
      ASSERT_EQ(snap.version % 2, 0u);  // Stable buckets are always even.
    }
  }
}

TEST(OptimisticPageTableTest, LockBucketForcesOptimisticFallback) {
  PageTable table(8);
  table.Insert(5, 3);
  PageTable::Snapshot before;
  ASSERT_TRUE(table.OptimisticFind(5, &before));
  EXPECT_EQ(before.frame, 3u);

  size_t bucket = table.LockBucket(5);
  EXPECT_EQ(bucket, before.bucket);
  // Locked (odd) bucket: no optimistic reader may claim a hit, and a pin
  // taken against the old snapshot must fail validation.
  PageTable::Snapshot during;
  EXPECT_FALSE(table.OptimisticFind(5, &during));
  EXPECT_FALSE(table.Validate(before));

  table.UnlockUnchanged(bucket);
  // Mapping intact, but the version moved on: old snapshots stay dead.
  FrameId frame = kInvalidFrameId;
  ASSERT_TRUE(table.Find(5, &frame));
  EXPECT_EQ(frame, 3u);
  EXPECT_FALSE(table.Validate(before));
  PageTable::Snapshot after;
  ASSERT_TRUE(table.OptimisticFind(5, &after));
  EXPECT_GT(after.version, before.version);  // Versions only grow.
  EXPECT_TRUE(table.Validate(after));
}

TEST(OptimisticPageTableTest, UnlockErasedRemovesTheMapping) {
  PageTable table(8);
  for (PageId p = 0; p < 8; ++p) table.Insert(p, static_cast<FrameId>(p));
  PageTable::Snapshot snap;
  ASSERT_TRUE(table.OptimisticFind(2, &snap));

  size_t bucket = table.LockBucket(2);
  table.UnlockErased(bucket);
  EXPECT_FALSE(table.contains(2));
  EXPECT_EQ(table.size(), 7u);
  EXPECT_FALSE(table.Validate(snap));
  // The backward shift left every other mapping findable.
  for (PageId p = 0; p < 8; ++p) {
    if (p == 2) continue;
    FrameId frame = kInvalidFrameId;
    ASSERT_TRUE(table.Find(p, &frame)) << "page " << p;
    EXPECT_EQ(frame, static_cast<FrameId>(p));
  }
}

// ---------------------------------------------------------------------------
// Differential battery: optimistic_hits vs the latched path —
// byte-identical single-threaded. Workload and scaffolding live in
// differential_harness.h (shared with async_io_test.cc and
// batched_access_test.cc); this suite runs it with batch_capacity 64 —
// the auto-bump default optimistic mode implies.

DiffScenarioResult RunScenario(DiffScenarioConfig config) {
  if (config.batch_capacity == 0) config.batch_capacity = 64;
  return RunDiffScenario(config);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathPlainPool) {
  DiffScenarioResult latched = RunScenario({.optimistic = false});
  DiffScenarioResult optimistic = RunScenario({.optimistic = true});
  ExpectScenarioEq(latched, optimistic);
  // The fast path actually ran (warm hits dominate a skewed workload) and
  // never misfired: single-threaded, nothing invalidates a probe
  // mid-flight, so every fallback is an honest probe miss (the page was
  // simply absent) — never a version conflict or a displacement-bound
  // overflow — and the attribution split is exact.
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
  EXPECT_EQ(optimistic.stats.optimistic_fallbacks, optimistic.stats.misses);
  EXPECT_EQ(optimistic.stats.fallback_probe_miss, optimistic.stats.misses);
  EXPECT_EQ(optimistic.stats.fallback_version_conflict, 0u);
  EXPECT_EQ(optimistic.stats.fallback_resize, 0u);
  EXPECT_EQ(optimistic.stats.optimistic_fallbacks,
            optimistic.stats.fallback_probe_miss +
                optimistic.stats.fallback_version_conflict +
                optimistic.stats.fallback_resize);
  EXPECT_EQ(optimistic.stats.access_drops, 0u);
  EXPECT_EQ(optimistic.stats.pin_cas_retries, 0u);
  EXPECT_EQ(latched.stats.optimistic_hits, 0u);
  EXPECT_EQ(latched.stats.access_drops, 0u);
  // Latch-free hits show up as the acquisition gap between the modes.
  EXPECT_LT(optimistic.stats.latch_acquires, latched.stats.latch_acquires);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathShardedPool) {
  DiffScenarioResult latched = RunScenario({.sharded = true, .optimistic = false});
  DiffScenarioResult optimistic =
      RunScenario({.sharded = true, .optimistic = true});
  ExpectScenarioEq(latched, optimistic);
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathUnderAsyncStack) {
  // Inline dispatcher + background flusher: the optimistic flusher pass
  // (pop-until-batch-unpinned + bucket-locked write-back) must peek the
  // same victims and clean the same pages as the latched one.
  for (bool sharded : {false, true}) {
    SCOPED_TRACE(sharded ? "sharded" : "plain");
    DiffScenarioResult latched =
        RunScenario({.sharded = sharded, .optimistic = false,
                     .async_stack = true});
    DiffScenarioResult optimistic =
        RunScenario({.sharded = sharded, .optimistic = true,
                     .async_stack = true});
    ExpectScenarioEq(latched, optimistic);
    EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
    EXPECT_GT(optimistic.stats.background_cleans, 0u);
  }
}

TEST(OptimisticDifferentialTest, DefaultBatchAutoBumpMatchesExplicit) {
  // optimistic_hits with batch_capacity left 0 implies batch_capacity 64
  // (a latch-free hit can only publish through the AccessBuffer).
  DiffScenarioResult defaulted =
      RunDiffScenario({.batch_capacity = 0, .optimistic = true});
  DiffScenarioResult explicit_batch =
      RunDiffScenario({.batch_capacity = 64, .optimistic = true});
  ExpectScenarioEq(defaulted, explicit_batch);

  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  EXPECT_EQ(pool.options().batch_capacity, 64u);
}

TEST(OptimisticDifferentialTest, ReadaheadComposesAndStaysIdentical) {
  // Readahead + optimistic_hits COMPOSE on both pool shapes: the voting
  // detector's Observe is wait-free, so warm hits stay latch-free while
  // the detector watches the full fetch stream — and the combined pool is
  // still byte-identical to the latched pool with the same detector.
  for (bool sharded : {false, true}) {
    SCOPED_TRACE(sharded ? "sharded" : "plain");
    DiffScenarioResult latched = RunScenario(
        {.sharded = sharded, .optimistic = false, .readahead = true});
    DiffScenarioResult optimistic = RunScenario(
        {.sharded = sharded, .optimistic = true, .readahead = true});
    ExpectScenarioEq(latched, optimistic);
    EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
    EXPECT_GT(optimistic.stats.prefetch_issued, 0u);
    EXPECT_EQ(optimistic.stats.access_drops, 0u);
  }
}

TEST(OptimisticDifferentialTest, TinyRingRefusalPathStaysIdentical) {
  // batch_capacity 1: nearly every publish lands on the ring-full refusal
  // path (drain under the latch + apply directly). The FIFO contract must
  // hold across the refusals — byte-identical again — and single-threaded
  // nothing is ever dropped, even with zero capacity headroom.
  DiffScenarioResult latched =
      RunScenario({.batch_capacity = 1, .optimistic = false});
  DiffScenarioResult optimistic =
      RunScenario({.batch_capacity = 1, .optimistic = true});
  ExpectScenarioEq(latched, optimistic);
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
  EXPECT_EQ(optimistic.stats.access_drops, 0u);
  EXPECT_EQ(latched.stats.access_drops, 0u);
}

// ---------------------------------------------------------------------------
// The zero-mutex hit: the acceptance criterion of the optimistic path.

TEST(OptimisticHitPathTest, WarmHitAcquiresNoLatch) {
  constexpr size_t kPages = 64;
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  // Room for every record this loop publishes, so no drain is triggered.
  options.batch_capacity = 256;
  BufferPool pool(128, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, kPages);

  // Everything resident (capacity > kPages): from here on, every fetch is
  // a warm hit and every unpin balances a latch-free pin.
  BufferPoolStats before = pool.StatsSnapshot();
  for (PageId p : pages) {
    auto page = pool.FetchPage(p, AccessType::kRead);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->id(), p);
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  BufferPoolStats after = pool.StatsSnapshot();

  // ZERO pool-latch acquisitions across 64 fetch/unpin pairs.
  EXPECT_EQ(after.latch_acquires, before.latch_acquires);
  EXPECT_EQ(after.optimistic_hits - before.optimistic_hits, kPages);
  EXPECT_EQ(after.hits - before.hits, kPages);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.optimistic_fallbacks, before.optimistic_fallbacks);

  // The buffered references land in the policy at the next drain point.
  (void)pool.stats();
  EXPECT_EQ(pool.policy().ResidentCount(), kPages);
}

TEST(OptimisticHitPathTest, WarmHitStaysLatchFreeWithReadaheadOn) {
  // The detector no longer forces warm hits onto the latched path: its
  // Observe is wait-free, so a hit that triggers nothing touches no
  // mutex. A single hot page re-referenced in a loop (diff 0 never votes)
  // is the detector's cheapest case — and must stay at zero latches.
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  options.batch_capacity = 256;
  options.io_dispatcher = true;  // Inline workers.
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 8);

  constexpr uint64_t kLoops = 64;
  BufferPoolStats before = pool.StatsSnapshot();
  for (uint64_t i = 0; i < kLoops; ++i) {
    auto page = pool.FetchPage(pages[0], AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  }
  BufferPoolStats after = pool.StatsSnapshot();

  EXPECT_EQ(after.latch_acquires, before.latch_acquires);
  EXPECT_EQ(after.optimistic_hits - before.optimistic_hits, kLoops);
  EXPECT_EQ(after.prefetch_issued, before.prefetch_issued);
  EXPECT_EQ(after.optimistic_fallbacks, before.optimistic_fallbacks);
}

TEST(OptimisticHitPathTest, StatsSnapshotMatchesStatsWhenQuiescent) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 48);
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(/*seed=*/11);
  for (int i = 0; i < 2000; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(0.25);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(p, write).ok());
  }

  // Quiescent pool: the lock-free snapshot and the draining stats() agree
  // on every counter. stats() itself takes the latch once, which is the
  // only drift the proxy counter may show.
  BufferPoolStats snap = pool.StatsSnapshot();
  BufferPoolStats full = pool.stats();
  ExpectPoolStatsEq(snap, full);
  EXPECT_EQ(snap.optimistic_hits, full.optimistic_hits);
  EXPECT_EQ(snap.optimistic_fallbacks, full.optimistic_fallbacks);
  EXPECT_EQ(snap.pin_cas_retries, full.pin_cas_retries);
  EXPECT_EQ(full.latch_acquires, snap.latch_acquires + 1);
  EXPECT_GT(snap.optimistic_hits, 0u);
}

// ---------------------------------------------------------------------------
// Error paths and the pin protocol.

TEST(OptimisticHitPathTest, UnpinErrorsMatchLatchedCodes) {
  SimDiskManager latched_disk;
  SimDiskManager optimistic_disk;
  BufferPoolOptions optimistic_options;
  optimistic_options.optimistic_hits = true;
  BufferPool latched(4, &latched_disk,
                     std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  BufferPool optimistic(4, &optimistic_disk,
                        std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                        optimistic_options);

  for (BufferPool* pool : {&latched, &optimistic}) {
    std::vector<PageId> pages = AllocateDb(*pool, 2);
    // Non-resident page: NotFound through both paths.
    EXPECT_EQ(pool->UnpinPage(999, false).code(), StatusCode::kNotFound);
    // Resident but unpinned: InvalidArgument through both paths (the
    // optimistic probe sees pin == 0 and defers to the latched path for
    // the authoritative error).
    EXPECT_EQ(pool->UnpinPage(pages[0], false).code(),
              StatusCode::kInvalidArgument);
    // Balanced unpin still works afterwards.
    auto page = pool->FetchPage(pages[0]);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(pool->UnpinPage(pages[0], false).ok());
  }
}

TEST(OptimisticHitPathTest, PinCountsAreEvictionGroundTruth) {
  // In optimistic mode SetEvictable is never used — AcquireFrame trusts
  // the atomic pin counts. Pinned pages must survive eviction pressure
  // and exhaust the pool exactly like the latched mode.
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(4, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 8);

  std::vector<Page*> pinned;
  for (size_t i = 0; i < 4; ++i) {
    auto page = pool.FetchPage(pages[i]);
    ASSERT_TRUE(page.ok());
    pinned.push_back(*page);
  }
  // Every frame pinned: the next distinct fetch finds no victim.
  auto exhausted = pool.FetchPage(pages[7]);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
  // The pinned pages were untouched by the failed eviction hunt.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.IsResident(pages[i]));
    EXPECT_EQ(pinned[i]->pin_count(), 1);
  }
  // Releasing one pin re-enables eviction.
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  auto fetched = pool.FetchPage(pages[7]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE(pool.IsResident(pages[0]));
  ASSERT_TRUE(pool.UnpinPage(pages[7], false).ok());
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(pool.UnpinPage(pages[i], false).ok());
  }
}

TEST(OptimisticHitPathTest, DeleteRefusesPinnedAndReusesIds) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(4, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 4);

  auto page = pool.FetchPage(pages[0]);
  ASSERT_TRUE(page.ok());
  // Pinned: the bucket-locked delete sees pin > 0 and refuses.
  EXPECT_EQ(pool.DeletePage(pages[0]).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(pool.IsResident(pages[0]));
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());

  // Unpinned: the delete lands, the frame returns to the free list, and
  // the allocator hands the id out again.
  ASSERT_TRUE(pool.DeletePage(pages[0]).ok());
  EXPECT_FALSE(pool.IsResident(pages[0]));
  EXPECT_EQ(pool.DeletePage(pages[0]).code(), StatusCode::kNotFound);
  auto fresh = pool.NewPage();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->id(), pages[0]);
  EXPECT_TRUE(pool.UnpinPage((*fresh)->id(), true).ok());
}

}  // namespace
}  // namespace lruk
