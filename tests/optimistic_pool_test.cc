// The optimistic hit path (BufferPoolOptions::optimistic_hits),
// deterministic half (the threaded half lives in
// optimistic_concurrency_test.cc).
//
// Coverage layers:
//  * PageTable units — insert/find/erase round-trips against a reference
//    map under heavy id reuse (backward-shift clusters), version growth,
//    LockBucket forcing optimistic readers to fall back, UnlockErased
//    removing the mapping, OptimisticFind/Validate agreeing with the
//    latched surface when nothing is mutating.
//  * Differential battery — with optimistic_hits ON, both pools produce
//    BYTE-IDENTICAL single-threaded behaviour to the latched path over the
//    same 20k-op mixed workload async_io_test.cc uses: same counters, same
//    victim sequence, same IoStats, same residency, same disk images —
//    with the async stack (inline dispatcher + flusher) off and on, and
//    with the auto-bumped default batch_capacity.
//  * Zero-mutex hit — a warm optimistic fetch/unpin pair acquires the pool
//    latch ZERO times, asserted via the latch_acquires counter.
//  * Readahead interaction — readahead and the optimistic fast path
//    compose on both pool shapes (the voting detector's Observe is
//    wait-free), staying byte-identical to the latched pool with the
//    same detector; a non-triggering warm hit stays at zero latches.
//  * StatsSnapshot — the lock-free snapshot equals the draining stats()
//    when the pool is quiescent.
//  * Error paths — optimistic UnpinPage/DeletePage report the same status
//    codes as the latched pool (NotFound, InvalidArgument), pinned pages
//    are never victims (pin counts as ground truth), ResourceExhausted
//    when every frame is pinned, and id reuse after delete works.

#include <algorithm>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/page_table.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

// ---------------------------------------------------------------------------
// PageTable units.

TEST(OptimisticPageTableTest, InsertFindEraseRoundTrip) {
  PageTable table(16);
  EXPECT_GE(table.bucket_count(), 32u);  // Load factor <= 1/2.
  EXPECT_EQ(table.size(), 0u);

  for (PageId p = 0; p < 16; ++p) table.Insert(p, static_cast<FrameId>(p * 7));
  EXPECT_EQ(table.size(), 16u);
  for (PageId p = 0; p < 16; ++p) {
    FrameId frame = kInvalidFrameId;
    ASSERT_TRUE(table.Find(p, &frame));
    EXPECT_EQ(frame, static_cast<FrameId>(p * 7));
    EXPECT_TRUE(table.contains(p));
  }
  FrameId frame = kInvalidFrameId;
  EXPECT_FALSE(table.Find(99, &frame));
  EXPECT_FALSE(table.contains(99));

  for (PageId p = 0; p < 16; p += 2) table.Erase(p);
  EXPECT_EQ(table.size(), 8u);
  for (PageId p = 0; p < 16; ++p) {
    EXPECT_EQ(table.contains(p), p % 2 == 1) << "page " << p;
  }
}

// Backward-shift deletion against a reference map: a small table under
// heavy id reuse keeps probe clusters dense, so erases constantly relocate
// entries. Every surviving mapping must stay findable — by the latched
// probe AND by the optimistic one (single-threaded, a stable table must
// always yield consistent snapshots that validate).
TEST(OptimisticPageTableTest, BackwardShiftChurnMatchesReferenceMap) {
  constexpr size_t kCapacity = 12;
  PageTable table(kCapacity);
  std::unordered_map<PageId, FrameId> reference;
  RandomEngine rng(/*seed=*/20260809);

  for (int step = 0; step < 4000; ++step) {
    bool insert = reference.size() < kCapacity &&
                  (reference.empty() || rng.NextBernoulli(0.5));
    if (insert) {
      PageId p = rng.NextBounded(64);  // Narrow id range: reuse + clustering.
      if (reference.contains(p)) continue;
      FrameId frame = static_cast<FrameId>(rng.NextBounded(kCapacity));
      table.Insert(p, frame);
      reference[p] = frame;
    } else {
      size_t skip = rng.NextBounded(reference.size());
      auto it = reference.begin();
      std::advance(it, skip);
      table.Erase(it->first);
      reference.erase(it);
    }
    ASSERT_EQ(table.size(), reference.size());
    for (const auto& [p, frame] : reference) {
      FrameId found = kInvalidFrameId;
      ASSERT_TRUE(table.Find(p, &found)) << "page " << p;
      ASSERT_EQ(found, frame);
      PageTable::Snapshot snap;
      ASSERT_TRUE(table.OptimisticFind(p, &snap)) << "page " << p;
      ASSERT_EQ(snap.frame, frame);
      ASSERT_TRUE(table.Validate(snap));
      ASSERT_EQ(snap.version % 2, 0u);  // Stable buckets are always even.
    }
  }
}

TEST(OptimisticPageTableTest, LockBucketForcesOptimisticFallback) {
  PageTable table(8);
  table.Insert(5, 3);
  PageTable::Snapshot before;
  ASSERT_TRUE(table.OptimisticFind(5, &before));
  EXPECT_EQ(before.frame, 3u);

  size_t bucket = table.LockBucket(5);
  EXPECT_EQ(bucket, before.bucket);
  // Locked (odd) bucket: no optimistic reader may claim a hit, and a pin
  // taken against the old snapshot must fail validation.
  PageTable::Snapshot during;
  EXPECT_FALSE(table.OptimisticFind(5, &during));
  EXPECT_FALSE(table.Validate(before));

  table.UnlockUnchanged(bucket);
  // Mapping intact, but the version moved on: old snapshots stay dead.
  FrameId frame = kInvalidFrameId;
  ASSERT_TRUE(table.Find(5, &frame));
  EXPECT_EQ(frame, 3u);
  EXPECT_FALSE(table.Validate(before));
  PageTable::Snapshot after;
  ASSERT_TRUE(table.OptimisticFind(5, &after));
  EXPECT_GT(after.version, before.version);  // Versions only grow.
  EXPECT_TRUE(table.Validate(after));
}

TEST(OptimisticPageTableTest, UnlockErasedRemovesTheMapping) {
  PageTable table(8);
  for (PageId p = 0; p < 8; ++p) table.Insert(p, static_cast<FrameId>(p));
  PageTable::Snapshot snap;
  ASSERT_TRUE(table.OptimisticFind(2, &snap));

  size_t bucket = table.LockBucket(2);
  table.UnlockErased(bucket);
  EXPECT_FALSE(table.contains(2));
  EXPECT_EQ(table.size(), 7u);
  EXPECT_FALSE(table.Validate(snap));
  // The backward shift left every other mapping findable.
  for (PageId p = 0; p < 8; ++p) {
    if (p == 2) continue;
    FrameId frame = kInvalidFrameId;
    ASSERT_TRUE(table.Find(p, &frame)) << "page " << p;
    EXPECT_EQ(frame, static_cast<FrameId>(p));
  }
}

// ---------------------------------------------------------------------------
// Differential battery: optimistic_hits vs the latched path —
// byte-identical single-threaded. Workload and harness mirror
// async_io_test.cc's (duplicated to keep the test binaries standalone).

void ExpectLegacyStatsEq(const BufferPoolStats& a, const BufferPoolStats& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.dirty_writebacks, b.dirty_writebacks);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.coalesced_reads, b.coalesced_reads);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_EQ(a.prefetch_used, b.prefetch_used);
  EXPECT_EQ(a.prefetch_dropped, b.prefetch_dropped);
  EXPECT_EQ(a.background_cleans, b.background_cleans);
}

void ExpectIoStatsEq(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.allocations, b.allocations);
  EXPECT_EQ(a.deallocations, b.deallocations);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.simulated_micros, b.simulated_micros);
}

std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

// Forwarding LRU-K wrapper recording the surviving eviction sequence
// (Restore pops its eviction — eviction skips and flusher peeks cancel
// out exactly, so what remains is the true victim order).
class RecordingLruK final : public ReplacementPolicy {
 public:
  explicit RecordingLruK(LruKOptions options) : inner_(options) {}

  void SetReferencingProcess(uint32_t process) override {
    inner_.SetReferencingProcess(process);
  }
  void PrepareAdmit(PageId p) override { inner_.PrepareAdmit(p); }
  void RecordAccess(PageId p, AccessType type) override {
    inner_.RecordAccess(p, type);
  }
  void RecordAccessBatch(const AccessRecord* records, size_t n) override {
    inner_.RecordAccessBatch(records, n);
  }
  void Admit(PageId p, AccessType type) override { inner_.Admit(p, type); }
  std::optional<PageId> Evict() override {
    auto victim = inner_.Evict();
    if (victim.has_value()) evictions_.push_back(*victim);
    return victim;
  }
  size_t EvictBatch(size_t k, std::vector<PageId>* out) override {
    size_t n = inner_.EvictBatch(k, out);
    evictions_.insert(evictions_.end(), out->begin(), out->end());
    return n;
  }
  void Restore(PageId p) override {
    // Unused nominees come back in reverse nomination order, but a batch's
    // CONSUMED nominee stays evicted mid-sequence — so erase the most
    // recent occurrence instead of asserting strict LIFO.
    auto it = std::find(evictions_.rbegin(), evictions_.rend(), p);
    ASSERT_TRUE(it != evictions_.rend());
    evictions_.erase(std::next(it).base());
    inner_.Restore(p);
  }
  void Remove(PageId p) override { inner_.Remove(p); }
  void SetEvictable(PageId p, bool evictable) override {
    inner_.SetEvictable(p, evictable);
  }
  size_t ResidentCount() const override { return inner_.ResidentCount(); }
  size_t EvictableCount() const override { return inner_.EvictableCount(); }
  bool IsResident(PageId p) const override { return inner_.IsResident(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override {
    inner_.ForEachResident(visit);
  }
  std::string_view Name() const override { return inner_.Name(); }

  const std::vector<PageId>& evictions() const { return evictions_; }

 private:
  LruKPolicy inner_;
  std::vector<PageId> evictions_;
};

struct ScenarioResult {
  BufferPoolStats stats;
  IoStats io;
  std::vector<std::vector<PageId>> evictions;
  std::vector<bool> residency;
  std::vector<std::string> images;
};

constexpr uint64_t kDiffDbPages = 96;
constexpr size_t kDiffCapacity = 24;
constexpr int kDiffOps = 20000;

// The same mixed deterministic workload as async_io_test.cc: skewed
// fetches, 25% writes, periodic FlushPage, periodic DeletePage + NewPage
// (id churn through the allocator's free list).
void DriveMixedWorkload(PoolInterface& pool, std::vector<PageId>& pages) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(/*seed=*/20260809);
  for (int i = 0; i < kDiffOps; ++i) {
    size_t idx = dist.Sample(rng) - 1;
    PageId p = pages[idx];
    bool write = rng.NextBernoulli(0.25);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    ASSERT_TRUE(page.ok()) << "op " << i;
    if (write) {
      std::memcpy((*page)->Data(), &i, sizeof(i));
    }
    ASSERT_TRUE(pool.UnpinPage(p, write).ok()) << "op " << i;
    if (i % 1009 == 0) ASSERT_TRUE(pool.FlushPage(p).ok());
    if (i % 501 == 250) {
      ASSERT_TRUE(pool.DeletePage(p).ok()) << "op " << i;
      auto fresh = pool.NewPage();
      ASSERT_TRUE(fresh.ok());
      pages[idx] = (*fresh)->id();
      ASSERT_TRUE(pool.UnpinPage((*fresh)->id(), true).ok());
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
}

struct ScenarioConfig {
  bool sharded = false;
  bool optimistic = false;
  size_t batch_capacity = 64;
  bool async_stack = false;  // Inline dispatcher + background flusher.
  bool readahead = false;    // Implies the dispatcher (inline).
};

ScenarioResult RunScenario(const ScenarioConfig& config) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.batch_capacity = config.batch_capacity;
  options.optimistic_hits = config.optimistic;
  if (config.async_stack) {
    options.io_dispatcher = true;  // Inline: io_workers = 0.
    options.flusher = true;
    options.flusher_every_ops = 32;
    options.flusher_batch = 4;
  }
  if (config.readahead) {
    options.io_dispatcher = true;
    options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  }

  ScenarioResult result;
  std::vector<PageId> pages;
  if (!config.sharded) {
    auto policy = std::make_unique<RecordingLruK>(LruKOptions{.k = 2});
    RecordingLruK* recorder = policy.get();
    BufferPool pool(kDiffCapacity, &disk, std::move(policy), options);
    pages = AllocateDb(pool, kDiffDbPages);
    DriveMixedWorkload(pool, pages);
    result.stats = pool.stats();
    result.evictions.push_back(recorder->evictions());
    for (PageId p : pages) result.residency.push_back(pool.IsResident(p));
  } else {
    std::vector<RecordingLruK*> recorders(4, nullptr);
    ShardedBufferPool pool(
        kDiffCapacity, /*num_shards=*/4, &disk,
        [&](size_t shard, size_t) {
          auto policy = std::make_unique<RecordingLruK>(LruKOptions{.k = 2});
          recorders[shard] = policy.get();
          return policy;
        },
        options);
    pages = AllocateDb(pool, kDiffDbPages);
    DriveMixedWorkload(pool, pages);
    result.stats = pool.stats();
    for (RecordingLruK* r : recorders) {
      result.evictions.push_back(r->evictions());
    }
    for (PageId p : pages) result.residency.push_back(pool.IsResident(p));
  }
  result.io = disk.stats();
  char buf[kPageSize];
  for (PageId p : pages) {
    EXPECT_TRUE(disk.ReadPage(p, buf).ok());
    result.images.emplace_back(buf, kPageSize);
  }
  return result;
}

void ExpectScenarioEq(const ScenarioResult& a, const ScenarioResult& b) {
  ExpectLegacyStatsEq(a.stats, b.stats);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.residency, b.residency);
  EXPECT_EQ(a.images, b.images);
  ExpectIoStatsEq(a.io, b.io);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathPlainPool) {
  ScenarioResult latched = RunScenario({.optimistic = false});
  ScenarioResult optimistic = RunScenario({.optimistic = true});
  ExpectScenarioEq(latched, optimistic);
  // The fast path actually ran (warm hits dominate a skewed workload) and
  // never misfired: single-threaded, nothing invalidates a probe
  // mid-flight, so every fallback is an honest probe miss (the page was
  // simply absent) — never a version conflict or a displacement-bound
  // overflow — and the attribution split is exact.
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
  EXPECT_EQ(optimistic.stats.optimistic_fallbacks, optimistic.stats.misses);
  EXPECT_EQ(optimistic.stats.fallback_probe_miss, optimistic.stats.misses);
  EXPECT_EQ(optimistic.stats.fallback_version_conflict, 0u);
  EXPECT_EQ(optimistic.stats.fallback_resize, 0u);
  EXPECT_EQ(optimistic.stats.optimistic_fallbacks,
            optimistic.stats.fallback_probe_miss +
                optimistic.stats.fallback_version_conflict +
                optimistic.stats.fallback_resize);
  EXPECT_EQ(optimistic.stats.access_drops, 0u);
  EXPECT_EQ(optimistic.stats.pin_cas_retries, 0u);
  EXPECT_EQ(latched.stats.optimistic_hits, 0u);
  EXPECT_EQ(latched.stats.access_drops, 0u);
  // Latch-free hits show up as the acquisition gap between the modes.
  EXPECT_LT(optimistic.stats.latch_acquires, latched.stats.latch_acquires);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathShardedPool) {
  ScenarioResult latched = RunScenario({.sharded = true, .optimistic = false});
  ScenarioResult optimistic =
      RunScenario({.sharded = true, .optimistic = true});
  ExpectScenarioEq(latched, optimistic);
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
}

TEST(OptimisticDifferentialTest, MatchesLatchedPathUnderAsyncStack) {
  // Inline dispatcher + background flusher: the optimistic flusher pass
  // (pop-until-batch-unpinned + bucket-locked write-back) must peek the
  // same victims and clean the same pages as the latched one.
  for (bool sharded : {false, true}) {
    SCOPED_TRACE(sharded ? "sharded" : "plain");
    ScenarioResult latched =
        RunScenario({.sharded = sharded, .optimistic = false,
                     .async_stack = true});
    ScenarioResult optimistic =
        RunScenario({.sharded = sharded, .optimistic = true,
                     .async_stack = true});
    ExpectScenarioEq(latched, optimistic);
    EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
    EXPECT_GT(optimistic.stats.background_cleans, 0u);
  }
}

TEST(OptimisticDifferentialTest, DefaultBatchAutoBumpMatchesExplicit) {
  // optimistic_hits with batch_capacity left 0 implies batch_capacity 64
  // (a latch-free hit can only publish through the AccessBuffer).
  ScenarioResult defaulted =
      RunScenario({.optimistic = true, .batch_capacity = 0});
  ScenarioResult explicit_batch =
      RunScenario({.optimistic = true, .batch_capacity = 64});
  ExpectScenarioEq(defaulted, explicit_batch);

  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  EXPECT_EQ(pool.options().batch_capacity, 64u);
}

TEST(OptimisticDifferentialTest, ReadaheadComposesAndStaysIdentical) {
  // Readahead + optimistic_hits COMPOSE on both pool shapes: the voting
  // detector's Observe is wait-free, so warm hits stay latch-free while
  // the detector watches the full fetch stream — and the combined pool is
  // still byte-identical to the latched pool with the same detector.
  for (bool sharded : {false, true}) {
    SCOPED_TRACE(sharded ? "sharded" : "plain");
    ScenarioResult latched = RunScenario(
        {.sharded = sharded, .optimistic = false, .readahead = true});
    ScenarioResult optimistic = RunScenario(
        {.sharded = sharded, .optimistic = true, .readahead = true});
    ExpectScenarioEq(latched, optimistic);
    EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
    EXPECT_GT(optimistic.stats.prefetch_issued, 0u);
    EXPECT_EQ(optimistic.stats.access_drops, 0u);
  }
}

TEST(OptimisticDifferentialTest, TinyRingRefusalPathStaysIdentical) {
  // batch_capacity 1: nearly every publish lands on the ring-full refusal
  // path (drain under the latch + apply directly). The FIFO contract must
  // hold across the refusals — byte-identical again — and single-threaded
  // nothing is ever dropped, even with zero capacity headroom.
  ScenarioResult latched =
      RunScenario({.optimistic = false, .batch_capacity = 1});
  ScenarioResult optimistic =
      RunScenario({.optimistic = true, .batch_capacity = 1});
  ExpectScenarioEq(latched, optimistic);
  EXPECT_GT(optimistic.stats.optimistic_hits, 0u);
  EXPECT_EQ(optimistic.stats.access_drops, 0u);
  EXPECT_EQ(latched.stats.access_drops, 0u);
}

// ---------------------------------------------------------------------------
// The zero-mutex hit: the acceptance criterion of the optimistic path.

TEST(OptimisticHitPathTest, WarmHitAcquiresNoLatch) {
  constexpr size_t kPages = 64;
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  // Room for every record this loop publishes, so no drain is triggered.
  options.batch_capacity = 256;
  BufferPool pool(128, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, kPages);

  // Everything resident (capacity > kPages): from here on, every fetch is
  // a warm hit and every unpin balances a latch-free pin.
  BufferPoolStats before = pool.StatsSnapshot();
  for (PageId p : pages) {
    auto page = pool.FetchPage(p, AccessType::kRead);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->id(), p);
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  BufferPoolStats after = pool.StatsSnapshot();

  // ZERO pool-latch acquisitions across 64 fetch/unpin pairs.
  EXPECT_EQ(after.latch_acquires, before.latch_acquires);
  EXPECT_EQ(after.optimistic_hits - before.optimistic_hits, kPages);
  EXPECT_EQ(after.hits - before.hits, kPages);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.optimistic_fallbacks, before.optimistic_fallbacks);

  // The buffered references land in the policy at the next drain point.
  (void)pool.stats();
  EXPECT_EQ(pool.policy().ResidentCount(), kPages);
}

TEST(OptimisticHitPathTest, WarmHitStaysLatchFreeWithReadaheadOn) {
  // The detector no longer forces warm hits onto the latched path: its
  // Observe is wait-free, so a hit that triggers nothing touches no
  // mutex. A single hot page re-referenced in a loop (diff 0 never votes)
  // is the detector's cheapest case — and must stay at zero latches.
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  options.batch_capacity = 256;
  options.io_dispatcher = true;  // Inline workers.
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 8);

  constexpr uint64_t kLoops = 64;
  BufferPoolStats before = pool.StatsSnapshot();
  for (uint64_t i = 0; i < kLoops; ++i) {
    auto page = pool.FetchPage(pages[0], AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  }
  BufferPoolStats after = pool.StatsSnapshot();

  EXPECT_EQ(after.latch_acquires, before.latch_acquires);
  EXPECT_EQ(after.optimistic_hits - before.optimistic_hits, kLoops);
  EXPECT_EQ(after.prefetch_issued, before.prefetch_issued);
  EXPECT_EQ(after.optimistic_fallbacks, before.optimistic_fallbacks);
}

TEST(OptimisticHitPathTest, StatsSnapshotMatchesStatsWhenQuiescent) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 48);
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(/*seed=*/11);
  for (int i = 0; i < 2000; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(0.25);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(p, write).ok());
  }

  // Quiescent pool: the lock-free snapshot and the draining stats() agree
  // on every counter. stats() itself takes the latch once, which is the
  // only drift the proxy counter may show.
  BufferPoolStats snap = pool.StatsSnapshot();
  BufferPoolStats full = pool.stats();
  ExpectLegacyStatsEq(snap, full);
  EXPECT_EQ(snap.optimistic_hits, full.optimistic_hits);
  EXPECT_EQ(snap.optimistic_fallbacks, full.optimistic_fallbacks);
  EXPECT_EQ(snap.pin_cas_retries, full.pin_cas_retries);
  EXPECT_EQ(full.latch_acquires, snap.latch_acquires + 1);
  EXPECT_GT(snap.optimistic_hits, 0u);
}

// ---------------------------------------------------------------------------
// Error paths and the pin protocol.

TEST(OptimisticHitPathTest, UnpinErrorsMatchLatchedCodes) {
  SimDiskManager latched_disk;
  SimDiskManager optimistic_disk;
  BufferPoolOptions optimistic_options;
  optimistic_options.optimistic_hits = true;
  BufferPool latched(4, &latched_disk,
                     std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  BufferPool optimistic(4, &optimistic_disk,
                        std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                        optimistic_options);

  for (BufferPool* pool : {&latched, &optimistic}) {
    std::vector<PageId> pages = AllocateDb(*pool, 2);
    // Non-resident page: NotFound through both paths.
    EXPECT_EQ(pool->UnpinPage(999, false).code(), StatusCode::kNotFound);
    // Resident but unpinned: InvalidArgument through both paths (the
    // optimistic probe sees pin == 0 and defers to the latched path for
    // the authoritative error).
    EXPECT_EQ(pool->UnpinPage(pages[0], false).code(),
              StatusCode::kInvalidArgument);
    // Balanced unpin still works afterwards.
    auto page = pool->FetchPage(pages[0]);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(pool->UnpinPage(pages[0], false).ok());
  }
}

TEST(OptimisticHitPathTest, PinCountsAreEvictionGroundTruth) {
  // In optimistic mode SetEvictable is never used — AcquireFrame trusts
  // the atomic pin counts. Pinned pages must survive eviction pressure
  // and exhaust the pool exactly like the latched mode.
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(4, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 8);

  std::vector<Page*> pinned;
  for (size_t i = 0; i < 4; ++i) {
    auto page = pool.FetchPage(pages[i]);
    ASSERT_TRUE(page.ok());
    pinned.push_back(*page);
  }
  // Every frame pinned: the next distinct fetch finds no victim.
  auto exhausted = pool.FetchPage(pages[7]);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
  // The pinned pages were untouched by the failed eviction hunt.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.IsResident(pages[i]));
    EXPECT_EQ(pinned[i]->pin_count(), 1);
  }
  // Releasing one pin re-enables eviction.
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  auto fetched = pool.FetchPage(pages[7]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE(pool.IsResident(pages[0]));
  ASSERT_TRUE(pool.UnpinPage(pages[7], false).ok());
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(pool.UnpinPage(pages[i], false).ok());
  }
}

TEST(OptimisticHitPathTest, DeleteRefusesPinnedAndReusesIds) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  BufferPool pool(4, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 4);

  auto page = pool.FetchPage(pages[0]);
  ASSERT_TRUE(page.ok());
  // Pinned: the bucket-locked delete sees pin > 0 and refuses.
  EXPECT_EQ(pool.DeletePage(pages[0]).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(pool.IsResident(pages[0]));
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());

  // Unpinned: the delete lands, the frame returns to the free list, and
  // the allocator hands the id out again.
  ASSERT_TRUE(pool.DeletePage(pages[0]).ok());
  EXPECT_FALSE(pool.IsResident(pages[0]));
  EXPECT_EQ(pool.DeletePage(pages[0]).code(), StatusCode::kNotFound);
  auto fresh = pool.NewPage();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->id(), pages[0]);
  EXPECT_TRUE(pool.UnpinPage((*fresh)->id(), true).ok());
}

}  // namespace
}  // namespace lruk
