// Multi-threaded sharded buffer pool hammering: with only per-shard
// latches (plus the pool-level allocation latch), the page tables, pin
// counts, per-shard policy bookkeeping and statistics must stay coherent
// while >= 8 threads issue mixed fetch/unpin/flush/delete traffic whose
// pages deliberately straddle shard boundaries; per-page data written
// under pins must never be lost. The TSan CI job (-DLRUK_SANITIZE=ON)
// runs this and concurrency_test to catch latch regressions in either
// pool.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bufferpool/sharded_buffer_pool.h"
#include "core/policy_factory.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 6000;
constexpr uint64_t kDataPages = 192;
constexpr uint64_t kChurnPages = 64;
constexpr size_t kFrames = 64;
constexpr size_t kShards = 4;

ShardPolicyFactory LruK2Factory() {
  auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
  EXPECT_TRUE(factory.ok());
  return *factory;
}

TEST(ShardedConcurrencyTest, MixedTrafficAcrossShardsKeepsCountsCoherent) {
  SimDiskManager disk;
  ShardedBufferPool pool(kFrames, kShards, &disk, LruK2Factory());

  // Allocate the stable "data" set single-threaded; every thread owns one
  // uint64 slot per page, so writers never race on the same bytes.
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < kDataPages; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    pages.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }

  std::atomic<uint64_t> failures{0};
  std::vector<uint64_t> ops_done(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(7000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId p = pages[rng.NextBounded(kDataPages)];
        auto page = pool.FetchPage(p, AccessType::kWrite);
        if (!page.ok()) {
          // Only acceptable failure: the owning shard momentarily fully
          // pinned.
          if (page.status().code() != StatusCode::kResourceExhausted) {
            ++failures;
          }
          continue;
        }
        auto* slots = (*page)->As<uint64_t>();
        ++slots[t];
        ++ops_done[t];
        if (!pool.UnpinPage(p, true).ok()) ++failures;
        if (i % 512 == 0) {
          (void)pool.FlushPage(p);  // May race with eviction: any Status.
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);

  // Pin counts all drained: a full flush succeeds and every page is
  // fetchable with pin count 1 (pin-count coherence).
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint64_t> totals(kThreads, 0);
  for (PageId p : pages) {
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->pin_count(), 1) << "page " << p;
    const auto* slots = (*page)->As<uint64_t>();
    for (int t = 0; t < kThreads; ++t) totals[t] += slots[t];
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  // Data integrity: per-thread increments written under pins are all
  // accounted for, across every shard boundary.
  uint64_t total_ops = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(totals[t], ops_done[t]) << "thread " << t << " lost updates";
    total_ops += ops_done[t];
  }

  // Stats coherence: the hammer fetches plus the verification fetches are
  // each exactly one hit or one miss, and the aggregate equals the
  // per-shard sum.
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_ops + kDataPages);
  BufferPoolStats sum;
  for (const BufferPoolStats& s : pool.ShardStats()) sum += s;
  EXPECT_EQ(sum.hits, stats.hits);
  EXPECT_EQ(sum.misses, stats.misses);
  EXPECT_EQ(sum.evictions, stats.evictions);
  EXPECT_EQ(sum.dirty_writebacks, stats.dirty_writebacks);
  EXPECT_LE(pool.ResidentCount(), pool.capacity());
}

// Adds DeletePage/NewPage churn to the mix: a separate page range is
// concurrently deleted and re-allocated while other threads try to fetch
// and flush it. Statuses on the churn range are unconstrained (a page may
// legitimately vanish between decision and call) — the test asserts the
// stable range's integrity, id uniqueness of re-allocations, and that the
// pool survives with coherent counts (TSan checks the latching).
TEST(ShardedConcurrencyTest, DeleteChurnAcrossShardBoundaries) {
  SimDiskManager disk;
  ShardedBufferPool pool(kFrames, kShards, &disk, LruK2Factory());

  std::vector<PageId> stable;
  for (uint64_t i = 0; i < kDataPages; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    stable.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  std::vector<PageId> churn;
  for (uint64_t i = 0; i < kChurnPages; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    churn.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage((*page)->id(), false).ok());
  }

  std::atomic<uint64_t> failures{0};
  std::vector<uint64_t> ops_done(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(9000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        double action = rng.NextDouble();
        if (action < 0.70) {
          // Stable-range fetch/increment/unpin (verified afterwards).
          PageId p = stable[rng.NextBounded(kDataPages)];
          auto page = pool.FetchPage(p, AccessType::kWrite);
          if (!page.ok()) {
            if (page.status().code() != StatusCode::kResourceExhausted) {
              ++failures;
            }
            continue;
          }
          ++(*page)->As<uint64_t>()[t];
          ++ops_done[t];
          if (!pool.UnpinPage(p, true).ok()) ++failures;
        } else if (action < 0.80) {
          // Churn-range fetch: the page may have been deleted (NOT_FOUND)
          // or its shard may be full — but a successful pin must always
          // unpin cleanly.
          PageId p = churn[rng.NextBounded(kChurnPages)];
          auto page = pool.FetchPage(p);
          if (page.ok() && !pool.UnpinPage(p, false).ok()) ++failures;
        } else if (action < 0.88) {
          PageId p = churn[rng.NextBounded(kChurnPages)];
          (void)pool.FlushPage(p);
        } else if (action < 0.94) {
          PageId p = churn[rng.NextBounded(kChurnPages)];
          (void)pool.DeletePage(p);
        } else {
          // Re-allocate: ids come from the pool-level allocator, so a
          // success must always be unpinnable (no duplicate admits).
          auto page = pool.NewPage();
          if (page.ok() && !pool.UnpinPage((*page)->id(), true).ok()) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());

  std::vector<uint64_t> totals(kThreads, 0);
  for (PageId p : stable) {
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->pin_count(), 1) << "page " << p;
    const auto* slots = (*page)->As<uint64_t>();
    for (int t = 0; t < kThreads; ++t) totals[t] += slots[t];
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(totals[t], ops_done[t]) << "thread " << t << " lost updates";
  }
  EXPECT_LE(pool.ResidentCount(), pool.capacity());
}

// Concurrent readers of one hot page across many threads: shared pins on
// the same shard must neither corrupt the payload nor leak pins.
TEST(ShardedConcurrencyTest, ParallelReadersShareHotPages) {
  SimDiskManager disk;
  ShardedBufferPool pool(16, 4, &disk, LruK2Factory());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId hot = (*page)->id();
  std::strcpy((*page)->Data(), "shared payload");
  ASSERT_TRUE(pool.UnpinPage(hot, true).ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        auto fetched = pool.FetchPage(hot);
        if (!fetched.ok()) {
          ++mismatches;
          continue;
        }
        if (std::strcmp((*fetched)->Data(), "shared payload") != 0) {
          ++mismatches;
        }
        if (!pool.UnpinPage(hot, false).ok()) ++mismatches;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  auto final_fetch = pool.FetchPage(hot);
  ASSERT_TRUE(final_fetch.ok());
  EXPECT_EQ((*final_fetch)->pin_count(), 1);
  ASSERT_TRUE(pool.UnpinPage(hot, false).ok());
}

}  // namespace
}  // namespace lruk
