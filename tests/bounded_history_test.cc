// Tests for the bounded non-resident history (the Section 5 "history
// space" knob): HistoryTable-level bookkeeping and LruKPolicy-level
// behavior.

#include <optional>

#include "core/history_table.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(BoundedHistoryTableTest, NonResidentCountTracksTransitions) {
  HistoryTable table(2, kInfinitePeriod, /*max_nonresident_blocks=*/0);
  bool had = false;
  HistoryBlock& a = table.GetOrCreate(1, 1, &had);
  a.resident = true;
  a.last = 1;
  EXPECT_EQ(table.NonResidentCount(), 0u);
  table.OnEvicted(1, a);
  EXPECT_EQ(table.NonResidentCount(), 1u);
  EXPECT_FALSE(a.resident);
  // Re-admission removes the non-resident entry.
  table.GetOrCreate(1, 2, &had);
  EXPECT_TRUE(had);
  EXPECT_EQ(table.NonResidentCount(), 0u);
}

TEST(BoundedHistoryTableTest, BoundDropsOldestLast) {
  HistoryTable table(2, kInfinitePeriod, /*max_nonresident_blocks=*/2);
  bool had = false;
  for (PageId p = 1; p <= 3; ++p) {
    HistoryBlock& block = table.GetOrCreate(p, p, &had);
    block.resident = true;
    block.last = p;  // Page 1 has the oldest LAST.
    table.OnEvicted(p, block);
  }
  EXPECT_EQ(table.NonResidentCount(), 2u);
  EXPECT_EQ(table.Find(1), nullptr);  // Oldest dropped.
  EXPECT_NE(table.Find(2), nullptr);
  EXPECT_NE(table.Find(3), nullptr);
}

TEST(BoundedHistoryTableTest, EraseMaintainsIndex) {
  HistoryTable table(2, kInfinitePeriod, /*max_nonresident_blocks=*/4);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.resident = true;
  block.last = 1;
  table.OnEvicted(1, block);
  table.Erase(1);
  EXPECT_EQ(table.NonResidentCount(), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(BoundedHistoryTableTest, PurgeMaintainsIndex) {
  HistoryTable table(2, /*retained_information_period=*/5,
                     /*max_nonresident_blocks=*/10);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.resident = true;
  block.last = 1;
  table.OnEvicted(1, block);
  EXPECT_EQ(table.PurgeExpired(100), 1u);
  EXPECT_EQ(table.NonResidentCount(), 0u);
}

TEST(BoundedHistoryPolicyTest, HistoryBudgetIsEnforced) {
  LruKOptions options;
  options.k = 2;
  options.max_nonresident_history = 4;
  LruKPolicy policy(options);
  // Stream 32 distinct pages through a 2-frame buffer.
  for (PageId p = 0; p < 32; ++p) {
    if (policy.ResidentCount() == 2) {
      ASSERT_TRUE(policy.Evict().has_value());
    }
    policy.Admit(p, AccessType::kRead);
    ASSERT_LE(policy.NonResidentHistorySize(), 4u);
  }
  // Total blocks = residents + bounded non-residents.
  EXPECT_LE(policy.HistorySize(), 2u + 4u);
}

TEST(BoundedHistoryPolicyTest, BudgetedHistoryStillRecognizesRecentPages) {
  LruKOptions options;
  options.k = 2;
  options.max_nonresident_history = 8;
  LruKPolicy policy(options);
  // Page 100 faults in, is evicted, and refaults before 8 other distinct
  // pages pass: its history must survive.
  policy.Admit(100, AccessType::kRead);  // t=1.
  ASSERT_TRUE(policy.Evict().has_value());
  for (PageId p = 0; p < 4; ++p) {
    if (policy.ResidentCount() == 2) {
      ASSERT_TRUE(policy.Evict().has_value());
    }
    policy.Admit(p, AccessType::kRead);
  }
  if (policy.ResidentCount() == 2) {
    ASSERT_TRUE(policy.Evict().has_value());
  }
  policy.Admit(100, AccessType::kRead);
  EXPECT_TRUE(policy.BackwardKDistance(100).has_value())
      << "history within budget must be retained";
}

TEST(BoundedHistoryPolicyTest, OverflowedHistoryIsForgotten) {
  LruKOptions options;
  options.k = 2;
  options.max_nonresident_history = 2;
  LruKPolicy policy(options);
  policy.Admit(100, AccessType::kRead);
  ASSERT_TRUE(policy.Evict().has_value());
  // Push 6 distinct pages through a 1-page buffer: page 100's block (the
  // oldest) is squeezed out of the 2-block budget.
  for (PageId p = 0; p < 6; ++p) {
    if (policy.ResidentCount() == 1) {
      ASSERT_TRUE(policy.Evict().has_value());
    }
    policy.Admit(p, AccessType::kRead);
  }
  EXPECT_EQ(policy.DebugBlock(100), nullptr);
  policy.Admit(100, AccessType::kRead);
  EXPECT_EQ(policy.BackwardKDistance(100), std::nullopt);  // Looks new.
}

}  // namespace
}  // namespace lruk
