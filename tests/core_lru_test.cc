#include "core/lru.h"

#include <optional>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(LruTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  lru.Admit(3, AccessType::kRead);
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(3));
  EXPECT_EQ(lru.Evict(), std::nullopt);
}

TEST(LruTest, AccessRefreshesRecency) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  lru.Admit(3, AccessType::kRead);
  lru.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(3));
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(1));
}

TEST(LruTest, ResidencyTracking) {
  LruPolicy lru;
  EXPECT_FALSE(lru.IsResident(5));
  lru.Admit(5, AccessType::kRead);
  EXPECT_TRUE(lru.IsResident(5));
  EXPECT_EQ(lru.ResidentCount(), 1u);
  lru.Evict();
  EXPECT_FALSE(lru.IsResident(5));
  EXPECT_EQ(lru.ResidentCount(), 0u);
}

TEST(LruTest, PinnedPagesAreSkipped) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  lru.SetEvictable(1, false);
  EXPECT_EQ(lru.EvictableCount(), 1u);
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(lru.Evict(), std::nullopt);  // Only the pinned page remains.
  lru.SetEvictable(1, true);
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(1));
}

TEST(LruTest, PinPreservesRecencyPosition) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  lru.Admit(3, AccessType::kRead);
  lru.SetEvictable(1, false);
  lru.SetEvictable(1, true);  // Unpinning must not make page 1 "recent".
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(1));
}

TEST(LruTest, RemoveDropsPage) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  lru.Remove(1);
  EXPECT_FALSE(lru.IsResident(1));
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(2));
}

TEST(LruTest, RemovePinnedPageAdjustsCounts) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.SetEvictable(1, false);
  lru.Remove(1);
  EXPECT_EQ(lru.ResidentCount(), 0u);
  EXPECT_EQ(lru.EvictableCount(), 0u);
}

TEST(LruTest, SetEvictableIsIdempotent) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.SetEvictable(1, true);
  lru.SetEvictable(1, true);
  EXPECT_EQ(lru.EvictableCount(), 1u);
  lru.SetEvictable(1, false);
  lru.SetEvictable(1, false);
  EXPECT_EQ(lru.EvictableCount(), 0u);
}

TEST(LruTest, EvictFromEmpty) {
  LruPolicy lru;
  EXPECT_EQ(lru.Evict(), std::nullopt);
}

TEST(LruTest, ReAdmitAfterEvictionIsFresh) {
  LruPolicy lru;
  lru.Admit(1, AccessType::kRead);
  lru.Admit(2, AccessType::kRead);
  ASSERT_EQ(lru.Evict(), std::optional<PageId>(1));
  lru.Admit(1, AccessType::kRead);  // 1 is now more recent than 2.
  EXPECT_EQ(lru.Evict(), std::optional<PageId>(2));
}

TEST(LruTest, LongSequenceKeepsWorkingSet) {
  LruPolicy lru;
  // Admit 10 pages, then repeatedly touch 0..4; evictions should drain
  // 5..9 first.
  for (PageId p = 0; p < 10; ++p) lru.Admit(p, AccessType::kRead);
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < 5; ++p) lru.RecordAccess(p, AccessType::kRead);
  }
  for (PageId expected = 5; expected < 10; ++expected) {
    EXPECT_EQ(lru.Evict(), std::optional<PageId>(expected));
  }
}

}  // namespace
}  // namespace lruk
