#include "core/history_table.h"

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(HistoryTableTest, CreateAndFind) {
  HistoryTable table(2, kInfinitePeriod);
  EXPECT_EQ(table.Find(7), nullptr);
  bool had = true;
  HistoryBlock& block = table.GetOrCreate(7, 10, &had);
  EXPECT_FALSE(had);
  EXPECT_EQ(block.hist.size(), 2u);
  EXPECT_EQ(block.HistK(), 0u);
  EXPECT_EQ(block.Hist1(), 0u);
  EXPECT_EQ(table.Find(7), &block);
  EXPECT_EQ(table.size(), 1u);
}

TEST(HistoryTableTest, SecondLookupReportsHistory) {
  HistoryTable table(3, kInfinitePeriod);
  bool had = true;
  table.GetOrCreate(1, 5, &had);
  EXPECT_FALSE(had);
  table.GetOrCreate(1, 6, &had);
  EXPECT_TRUE(had);
}

TEST(HistoryTableTest, BlockStoresKEntries) {
  for (int k = 1; k <= 8; ++k) {
    HistoryTable table(k, kInfinitePeriod);
    bool had = false;
    HistoryBlock& block = table.GetOrCreate(1, 1, &had);
    EXPECT_EQ(block.hist.size(), static_cast<size_t>(k));
  }
}

TEST(HistoryTableTest, ExpiryRequiresNonResident) {
  HistoryTable table(2, /*retained_information_period=*/10);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.last = 1;
  block.resident = true;
  EXPECT_FALSE(table.Expired(block, 100));  // Resident blocks never expire.
  block.resident = false;
  EXPECT_FALSE(table.Expired(block, 11));  // Exactly RIP old: still alive.
  EXPECT_TRUE(table.Expired(block, 12));
}

TEST(HistoryTableTest, GetOrCreateResetsExpiredBlock) {
  HistoryTable table(2, /*retained_information_period=*/10);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.hist = {5, 3};
  block.last = 5;
  block.resident = false;
  HistoryBlock& again = table.GetOrCreate(1, 100, &had);
  EXPECT_FALSE(had);  // History expired: treated as a fresh page.
  EXPECT_EQ(again.Hist1(), 0u);
  EXPECT_EQ(again.HistK(), 0u);
}

TEST(HistoryTableTest, GetOrCreateKeepsFreshBlock) {
  HistoryTable table(2, /*retained_information_period=*/100);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.hist = {5, 3};
  block.last = 5;
  block.resident = false;
  HistoryBlock& again = table.GetOrCreate(1, 50, &had);
  EXPECT_TRUE(had);
  EXPECT_EQ(again.Hist1(), 5u);
  EXPECT_EQ(again.HistK(), 3u);
}

TEST(HistoryTableTest, PurgeExpiredDropsOnlyStaleNonResident) {
  HistoryTable table(2, /*retained_information_period=*/10);
  bool had = false;
  HistoryBlock& stale = table.GetOrCreate(1, 1, &had);
  stale.last = 1;
  stale.resident = false;
  HistoryBlock& fresh = table.GetOrCreate(2, 95, &had);
  fresh.last = 95;
  fresh.resident = false;
  HistoryBlock& resident = table.GetOrCreate(3, 1, &had);
  resident.last = 1;
  resident.resident = true;

  EXPECT_EQ(table.PurgeExpired(100), 1u);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_NE(table.Find(2), nullptr);
  EXPECT_NE(table.Find(3), nullptr);
}

TEST(HistoryTableTest, InfinitePeriodNeverPurges) {
  HistoryTable table(2, kInfinitePeriod);
  bool had = false;
  HistoryBlock& block = table.GetOrCreate(1, 1, &had);
  block.last = 1;
  block.resident = false;
  EXPECT_EQ(table.PurgeExpired(UINT64_MAX - 1), 0u);
  EXPECT_NE(table.Find(1), nullptr);
}

TEST(HistoryTableTest, EraseRemovesBlock) {
  HistoryTable table(2, kInfinitePeriod);
  bool had = false;
  table.GetOrCreate(1, 1, &had);
  table.Erase(1);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace lruk
