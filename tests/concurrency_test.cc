// Multi-threaded buffer pool hammering: the pool's coarse latch must keep
// the page table, pin counts, policy bookkeeping, and statistics coherent
// under concurrent fetch/unpin/flush traffic, and per-page data written
// under pins must never be lost.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 8000;
constexpr uint64_t kDbPages = 256;
constexpr size_t kFrames = 32;

TEST(ConcurrencyTest, ParallelFetchUnpinKeepsCountsCoherent) {
  SimDiskManager disk;
  LruKOptions options;
  options.k = 2;
  BufferPool pool(kFrames, &disk, std::make_unique<LruKPolicy>(options));

  // Allocate the database single-threaded.
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < kDbPages; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    pages.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }

  // Each thread owns one uint64 slot per page; every successful pin
  // increments the owner's slot. Threads never race on the same bytes.
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  std::vector<uint64_t> ops_done(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId p = pages[rng.NextBounded(kDbPages)];
        auto page = pool.FetchPage(p, AccessType::kWrite);
        if (!page.ok()) {
          // Only acceptable failure: every frame momentarily pinned.
          if (page.status().code() != StatusCode::kResourceExhausted) {
            ++failures;
          }
          continue;
        }
        auto* slots = (*page)->As<uint64_t>();
        ++slots[t];
        ++ops_done[t];
        if (!pool.UnpinPage(p, true).ok()) ++failures;
        if (i % 512 == 0) {
          (void)pool.FlushPage(p);  // May race with eviction: any Status.
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);

  // Pin counts all drained: every page is evictable/fetchable again.
  ASSERT_TRUE(pool.FlushAll().ok());

  // Data integrity: per-thread increments must all be on disk/in pool.
  std::vector<uint64_t> totals(kThreads, 0);
  for (PageId p : pages) {
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    const auto* slots = (*page)->As<uint64_t>();
    for (int t = 0; t < kThreads; ++t) totals[t] += slots[t];
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(totals[t], ops_done[t]) << "thread " << t << " lost updates";
  }

  // Stats coherence: every hammer fetch and every verification fetch is
  // exactly one hit or one miss (NewPage and FlushPage count neither, and
  // with 4 threads pinning at most one page each of 32 frames, no fetch
  // can have failed with RESOURCE_EXHAUSTED).
  BufferPoolStats stats = pool.stats();
  uint64_t total_ops = ops_done[0] + ops_done[1] + ops_done[2] + ops_done[3];
  EXPECT_EQ(stats.hits + stats.misses, total_ops + kDbPages);
}

TEST(ConcurrencyTest, ParallelReadersShareHotPages) {
  SimDiskManager disk;
  BufferPool pool(8, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{}));
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId hot = (*page)->id();
  std::strcpy((*page)->Data(), "shared payload");
  ASSERT_TRUE(pool.UnpinPage(hot, true).ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        auto fetched = pool.FetchPage(hot);
        if (!fetched.ok()) {
          ++mismatches;
          continue;
        }
        if (std::strcmp((*fetched)->Data(), "shared payload") != 0) {
          ++mismatches;
        }
        if (!pool.UnpinPage(hot, false).ok()) ++mismatches;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  auto final_fetch = pool.FetchPage(hot);
  ASSERT_TRUE(final_fetch.ok());
  EXPECT_EQ((*final_fetch)->pin_count(), 1);
  ASSERT_TRUE(pool.UnpinPage(hot, false).ok());
}

}  // namespace
}  // namespace lruk
