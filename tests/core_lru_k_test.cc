// Semantics tests for LruKPolicy against hand-executed runs of the paper's
// Figure 2.1 pseudo-code. Time ticks once per RecordAccess/Admit, starting
// at 1.

#include "core/lru_k.h"

#include <optional>
#include <vector>

#include "gtest/gtest.h"

namespace lruk {
namespace {

LruKOptions Opts(int k, Timestamp crp = 0,
                 Timestamp rip = kInfinitePeriod) {
  LruKOptions o;
  o.k = k;
  o.correlated_reference_period = crp;
  o.retained_information_period = rip;
  return o;
}

TEST(LruKTest, NameReflectsK) {
  EXPECT_EQ(LruKPolicy(Opts(1)).Name(), "LRU-1");
  EXPECT_EQ(LruKPolicy(Opts(2)).Name(), "LRU-2");
  EXPECT_EQ(LruKPolicy(Opts(7)).Name(), "LRU-7");
}

TEST(LruKTest, SubsidiaryLruAmongInfiniteDistances) {
  // Three pages, one reference each: all have b_t(p,2) = infinity, so the
  // subsidiary LRU policy must order them by first reference.
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.Admit(3, AccessType::kRead);
  EXPECT_EQ(policy.BackwardKDistance(1), std::nullopt);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(3));
  EXPECT_EQ(policy.Evict(), std::nullopt);
}

TEST(LruKTest, InfiniteDistanceEvictedBeforeFiniteDistance) {
  // Page 1 gets two references (finite b) while page 2 has one (infinite);
  // page 2 must go first even though page 1 is older by last reference.
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);       // t=1
  policy.Admit(2, AccessType::kRead);       // t=2
  policy.RecordAccess(1, AccessType::kRead);  // t=3: HIST(1)=[3,1]
  ASSERT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
}

TEST(LruKTest, MaxBackwardKDistanceIsVictim) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);         // t=1
  policy.Admit(2, AccessType::kRead);         // t=2
  policy.RecordAccess(1, AccessType::kRead);  // t=3: HIST(1)=[3,1]
  policy.RecordAccess(2, AccessType::kRead);  // t=4: HIST(2)=[4,2]
  // b(1,2) = 4-1 = 3 > b(2,2) = 4-2 = 2: page 1 is the victim.
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(3));
  EXPECT_EQ(policy.BackwardKDistance(2), std::optional<Timestamp>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
}

TEST(LruKTest, RecencyOfLastReferenceDoesNotOverrideKDistance) {
  // The defining difference from LRU: page 2's most recent reference is
  // newer, but its second-most-recent is older, so page 2 is evicted.
  LruKPolicy policy(Opts(2));
  policy.Admit(2, AccessType::kRead);         // t=1
  policy.RecordAccess(2, AccessType::kRead);  // t=2: HIST(2)=[2,1]
  policy.Admit(1, AccessType::kRead);         // t=3
  policy.RecordAccess(1, AccessType::kRead);  // t=4: HIST(1)=[4,3]
  policy.RecordAccess(2, AccessType::kRead);  // t=5: HIST(2)=[5,2]
  // b(1,2) = 5-3 = 2; b(2,2) = 5-2 = 3. LRU would evict 1 (older LAST);
  // LRU-2 must evict 2.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
}

TEST(LruKTest, HistoryShiftKeepsKMostRecent) {
  LruKPolicy policy(Opts(3));
  policy.Admit(9, AccessType::kRead);  // t=1
  for (Timestamp t = 2; t <= 5; ++t) {
    policy.RecordAccess(9, AccessType::kRead);  // t=2..5
  }
  const HistoryBlock* block = policy.DebugBlock(9);
  ASSERT_NE(block, nullptr);
  // The three most recent of {1,2,3,4,5}.
  EXPECT_EQ(block->hist[0], 5u);
  EXPECT_EQ(block->hist[1], 4u);
  EXPECT_EQ(block->hist[2], 3u);
  EXPECT_EQ(policy.BackwardKDistance(9), std::optional<Timestamp>(2));
}

TEST(LruKTest, CorrelatedReferencesOnlyMoveLast) {
  LruKPolicy policy(Opts(2, /*crp=*/2));
  policy.Admit(1, AccessType::kRead);         // t=1: HIST=[1,0], LAST=1
  policy.RecordAccess(1, AccessType::kRead);  // t=2: gap 1 <= 2, correlated
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 1u);
  EXPECT_EQ(block->hist[1], 0u);
  EXPECT_EQ(block->last, 2u);
}

TEST(LruKTest, UncorrelatedReferenceCollapsesCorrelationPeriod) {
  // Figure 2.1: on an uncorrelated reference, earlier history shifts by
  // the length of the closed correlated period so the burst counts as one
  // reference with zero width.
  LruKPolicy policy(Opts(2, /*crp=*/2));
  policy.Admit(1, AccessType::kRead);         // t=1: HIST=[1,0], LAST=1
  policy.RecordAccess(1, AccessType::kRead);  // t=2: correlated, LAST=2
  policy.RecordAccess(1, AccessType::kRead);  // t=3: correlated, LAST=3
  policy.Admit(2, AccessType::kRead);         // t=4
  policy.Admit(3, AccessType::kRead);         // t=5
  policy.RecordAccess(1, AccessType::kRead);  // t=6: gap 3 > 2, uncorrelated
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  // correlation_period = LAST - HIST(1,1) = 3 - 1 = 2;
  // HIST(1,2) = old HIST(1,1) + 2 = 3; HIST(1,1) = 6.
  EXPECT_EQ(block->hist[0], 6u);
  EXPECT_EQ(block->hist[1], 3u);
  EXPECT_EQ(block->last, 6u);
  // Interarrival credited: 6 - 3 = 3, the gap between correlation periods.
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(3));
}

TEST(LruKTest, ShiftNeverFabricatesUnknownEntries) {
  // K=3 with a nonzero correlation adjustment: the literal Figure 2.1 loop
  // would set HIST(p,3) = 0 + correlation_period; ours must keep it 0.
  LruKPolicy policy(Opts(3, /*crp=*/2));
  policy.Admit(1, AccessType::kRead);         // t=1
  policy.RecordAccess(1, AccessType::kRead);  // t=2: correlated
  policy.Admit(2, AccessType::kRead);         // t=3
  policy.Admit(3, AccessType::kRead);         // t=4
  policy.RecordAccess(1, AccessType::kRead);  // t=5: uncorrelated, corr=1
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 5u);
  EXPECT_EQ(block->hist[1], 2u);  // 1 + correlation period 1.
  EXPECT_EQ(block->hist[2], 0u);  // Still unknown.
  EXPECT_EQ(policy.BackwardKDistance(1), std::nullopt);
}

TEST(LruKTest, EvictionEligibilityHonorsCorrelatedPeriod) {
  LruKPolicy policy(Opts(2, /*crp=*/2));
  policy.Admit(1, AccessType::kRead);  // t=1
  policy.Admit(2, AccessType::kRead);  // t=2
  policy.Admit(3, AccessType::kRead);  // t=3
  policy.Admit(4, AccessType::kRead);  // t=4
  // Eviction happens at prospective t=5: pages 3 (gap 2) and 4 (gap 1) are
  // inside the correlated period; among eligible {1,2} subsidiary LRU
  // picks 1.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.fallback_evictions(), 0u);
}

TEST(LruKTest, FallbackEvictionWhenNoPageEligible) {
  LruKPolicy policy(Opts(2, /*crp=*/10));
  policy.Admit(1, AccessType::kRead);  // t=1
  policy.Admit(2, AccessType::kRead);  // t=2
  // Prospective t=3: both pages are within the CRP. The paper's loop finds
  // nothing; we must still free a slot and count the fallback.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.fallback_evictions(), 1u);
}

TEST(LruKTest, HistoryRetainedPastResidence) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);  // t=1
  ASSERT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_FALSE(policy.IsResident(1));
  EXPECT_EQ(policy.HistorySize(), 1u);  // Block survives the eviction.

  policy.Admit(2, AccessType::kRead);  // t=2
  policy.Admit(1, AccessType::kRead);  // t=3: history shift -> HIST=[3,1]
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 3u);
  EXPECT_EQ(block->hist[1], 1u);
  // Page 1 now has finite b (=2) while page 2 is infinite: 2 is evicted,
  // which is exactly the behavior the Retained Information Problem section
  // motivates.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
}

TEST(LruKTest, RetainedInformationPeriodExpiresHistory) {
  // RIP = 3 ticks; after eviction at t=1, re-admitting at t=6 is too late:
  // the page must look brand new (infinite distance).
  LruKOptions options = Opts(2, 0, /*rip=*/3);
  options.purge_interval = 0;  // Exercise the lazy (GetOrCreate) path.
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);  // t=1
  ASSERT_TRUE(policy.Evict().has_value());
  policy.Admit(10, AccessType::kRead);  // t=2
  policy.Admit(11, AccessType::kRead);  // t=3
  policy.Admit(12, AccessType::kRead);  // t=4
  policy.Admit(13, AccessType::kRead);  // t=5
  policy.Admit(1, AccessType::kRead);   // t=6: 6-1 > 3, history expired
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 6u);
  EXPECT_EQ(block->hist[1], 0u);  // No second reference known.
  EXPECT_EQ(policy.BackwardKDistance(1), std::nullopt);
}

TEST(LruKTest, ReAdmissionWithinRipKeepsHistory) {
  LruKOptions options = Opts(2, 0, /*rip=*/100);
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);  // t=1
  ASSERT_TRUE(policy.Evict().has_value());
  policy.Admit(2, AccessType::kRead);  // t=2
  policy.Admit(1, AccessType::kRead);  // t=3: within RIP
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(2));
}

TEST(LruKTest, PurgeHistoryDropsExpiredBlocks) {
  LruKOptions options = Opts(2, 0, /*rip=*/2);
  options.purge_interval = 0;
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);  // t=1
  ASSERT_TRUE(policy.Evict().has_value());
  policy.Admit(2, AccessType::kRead);  // t=2
  policy.Admit(3, AccessType::kRead);  // t=3
  policy.Admit(4, AccessType::kRead);  // t=4
  EXPECT_EQ(policy.HistorySize(), 4u);
  // Page 1's block (last=1) is stale at t=4; resident pages are immune.
  EXPECT_EQ(policy.PurgeHistory(), 1u);
  EXPECT_EQ(policy.HistorySize(), 3u);
  EXPECT_EQ(policy.DebugBlock(1), nullptr);
}

TEST(LruKTest, AutomaticDemonPurges) {
  LruKOptions options = Opts(2, 0, /*rip=*/1);
  options.purge_interval = 4;  // Demon runs when time % 4 == 0.
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);  // t=1
  ASSERT_TRUE(policy.Evict().has_value());
  policy.Admit(2, AccessType::kRead);  // t=2
  policy.Admit(3, AccessType::kRead);  // t=3
  EXPECT_EQ(policy.HistorySize(), 3u);
  policy.Admit(4, AccessType::kRead);  // t=4: demon fires, page 1 purged.
  EXPECT_EQ(policy.DebugBlock(1), nullptr);
}

TEST(LruKTest, PinnedPagesAreNotVictims) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.SetEvictable(1, false);
  EXPECT_EQ(policy.EvictableCount(), 1u);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::nullopt);
  policy.SetEvictable(1, true);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
}

TEST(LruKTest, RemoveErasesHistory) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.RecordAccess(1, AccessType::kRead);
  policy.Remove(1);
  EXPECT_FALSE(policy.IsResident(1));
  EXPECT_EQ(policy.HistorySize(), 0u);
  EXPECT_EQ(policy.DebugBlock(1), nullptr);
}

TEST(LruKTest, CountsStayConsistent) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.Admit(3, AccessType::kRead);
  EXPECT_EQ(policy.ResidentCount(), 3u);
  EXPECT_EQ(policy.EvictableCount(), 3u);
  policy.SetEvictable(2, false);
  EXPECT_EQ(policy.EvictableCount(), 2u);
  policy.Evict();
  EXPECT_EQ(policy.ResidentCount(), 2u);
  EXPECT_EQ(policy.EvictableCount(), 1u);
  policy.Remove(2);
  EXPECT_EQ(policy.ResidentCount(), 1u);
  EXPECT_EQ(policy.EvictableCount(), 1u);
}

TEST(LruKTest, CurrentTimeCountsAllReferences) {
  LruKPolicy policy(Opts(2, /*crp=*/5));
  policy.Admit(1, AccessType::kRead);
  policy.RecordAccess(1, AccessType::kRead);  // Correlated, still a tick.
  policy.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(policy.CurrentTime(), 3u);
}

TEST(LruKTest, EvictDoesNotTickClock) {
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Evict();
  EXPECT_EQ(policy.CurrentTime(), 1u);
}

TEST(LruKTest, K1BehavesAsClassicalLruOnBasicSequence) {
  LruKPolicy policy(Opts(1));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.Admit(3, AccessType::kRead);
  policy.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(3));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
}

TEST(LruKTest, LinearScanModeMatchesBasicScenario) {
  LruKOptions options = Opts(2);
  options.use_linear_scan = true;
  LruKPolicy policy(options);
  EXPECT_EQ(policy.victim_index(), VictimIndex::kLinear);
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
}

// --- Lazy-heap victim index (the default; DESIGN.md "Victim index
// structures") ---

TEST(LruKLazyHeapTest, HitsAddNoHeapEntries) {
  // The whole point of the lazy heap: a hit rewrites the history block and
  // touches nothing else. One entry per admitted page, zero growth across
  // an arbitrary number of re-references.
  LruKPolicy policy(Opts(2));
  ASSERT_EQ(policy.victim_index(), VictimIndex::kLazyHeap);
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  EXPECT_EQ(policy.VictimHeapSize(), 2u);
  for (int i = 0; i < 1000; ++i) {
    policy.RecordAccess(1, AccessType::kRead);
    policy.RecordAccess(2, AccessType::kRead);
  }
  EXPECT_EQ(policy.VictimHeapSize(), 2u);
}

TEST(LruKLazyHeapTest, PinUnpinChurnDoesNotGrowHeapUnbounded) {
  // SetEvictable(true) re-pushes only when the page has no live heap entry
  // (in_victim_heap); a pin/unpin loop must not mint one entry per cycle.
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  for (int i = 0; i < 1000; ++i) {
    policy.SetEvictable(1, false);
    policy.SetEvictable(1, true);
  }
  EXPECT_EQ(policy.VictimHeapSize(), 2u);
}

TEST(LruKLazyHeapTest, StaleEntriesStillYieldTheTrueMinimum) {
  // Reference pattern chosen so the heap's stored keys are stale for every
  // page at eviction time; the pop-and-rekey protocol must still surface
  // the true minimum (page 2: its second reference is oldest).
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);       // t=1
  policy.Admit(2, AccessType::kRead);       // t=2
  policy.Admit(3, AccessType::kRead);       // t=3
  policy.RecordAccess(2, AccessType::kRead);  // t=4: HIST(2)={4,2}
  policy.RecordAccess(1, AccessType::kRead);  // t=5: HIST(1)={5,1}
  policy.RecordAccess(3, AccessType::kRead);  // t=6: HIST(3)={6,3}
  policy.RecordAccess(1, AccessType::kRead);  // t=7: HIST(1)={7,5}
  policy.RecordAccess(3, AccessType::kRead);  // t=8: HIST(3)={8,6}
  // Backward-2 keys: 1 -> 5, 2 -> 2, 3 -> 6; minimum is page 2.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(3));
}

TEST(LruKLazyHeapTest, FallbackIgnoresCrpLikeTheOtherIndexes) {
  // Every page inside its CRP: the heap's fallback must pick the best key
  // regardless of eligibility and count the event, like ordered/linear.
  LruKOptions options = Opts(2, /*crp=*/1000);
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.Admit(3, AccessType::kRead);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.fallback_evictions(), 1u);
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.fallback_evictions(), 2u);
}

TEST(LruKLazyHeapTest, RemoveAndReadmitKeepsHeapConsistent) {
  // Remove leaves a dangling heap entry (reaped lazily); re-admission must
  // push a fresh entry and eviction must still work.
  LruKPolicy policy(Opts(2));
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);
  policy.Remove(1);
  policy.Admit(1, AccessType::kRead);  // New history, fresh heap entry.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.Evict(), std::nullopt);
}

// ---------------------------------------------------------------------------
// EvictBatch exactness. One EvictBatch(k) call must nominate exactly the
// sequence k sequential Evict() calls would return — for every victim
// index — and restoring unused nominees must leave the policy as if they
// had never been nominated (deferred retention, no history churn).

// Mixed-distance state: 12 residents, skewed re-references so backward
// K-distances differ, two pinned pages mid-range, and one infinite-
// distance straggler re-referenced late.
void DriveBatchTrace(LruKPolicy& p) {
  for (PageId q = 1; q <= 12; ++q) p.Admit(q, AccessType::kRead);
  for (int lap = 0; lap < 3; ++lap) {
    for (PageId q = 1; q <= 6; ++q) {
      if ((q + lap) % 2 == 0) p.RecordAccess(q, AccessType::kRead);
    }
  }
  p.RecordAccess(9, AccessType::kRead);
  p.SetEvictable(4, false);
  p.SetEvictable(10, false);
}

LruKOptions IndexedOpts(VictimIndex index) {
  LruKOptions o;
  o.k = 2;
  o.victim_index = index;
  return o;
}

class LruKEvictBatchTest : public ::testing::TestWithParam<VictimIndex> {};

TEST_P(LruKEvictBatchTest, MatchesSequentialEvictsExactly) {
  LruKPolicy sequential(IndexedOpts(GetParam()));
  LruKPolicy batched(IndexedOpts(GetParam()));
  DriveBatchTrace(sequential);
  DriveBatchTrace(batched);

  std::vector<PageId> expected;
  while (auto v = sequential.Evict()) expected.push_back(*v);
  ASSERT_EQ(expected.size(), 10u);  // 12 resident, 2 pinned.

  std::vector<PageId> batch;
  EXPECT_EQ(batched.EvictBatch(4, &batch), 4u);  // A prefix...
  std::vector<PageId> rest;
  EXPECT_EQ(batched.EvictBatch(64, &rest), 6u);  // ...then a short tail.
  batch.insert(batch.end(), rest.begin(), rest.end());
  EXPECT_EQ(batch, expected);
}

TEST_P(LruKEvictBatchTest, RestoredNomineesAreAsIfNeverNominated) {
  LruKPolicy policy(IndexedOpts(GetParam()));
  DriveBatchTrace(policy);
  const size_t residents = policy.ResidentCount();

  std::vector<PageId> first;
  ASSERT_EQ(policy.EvictBatch(5, &first), 5u);
  for (size_t i = first.size(); i-- > 0;) policy.Restore(first[i]);
  EXPECT_EQ(policy.ResidentCount(), residents);

  // Nominating again yields the exact same sequence: no clock tick
  // happened, and every Restore reattached the retained history block
  // instead of re-admitting fresh.
  std::vector<PageId> second;
  ASSERT_EQ(policy.EvictBatch(5, &second), 5u);
  EXPECT_EQ(second, first);
}

TEST_P(LruKEvictBatchTest, ConsumedMidSequenceMatchesEvictRestore) {
  // Batched caller: nominate 3, consume the middle nominee, hand the
  // other two back in reverse nomination order. Reference caller: two
  // sequential Evicts to reach the same victim, then Restore the skipped
  // first nominee. Both policies must agree on every later eviction.
  LruKPolicy batched(IndexedOpts(GetParam()));
  LruKPolicy reference(IndexedOpts(GetParam()));
  DriveBatchTrace(batched);
  DriveBatchTrace(reference);

  std::vector<PageId> nominees;
  ASSERT_EQ(batched.EvictBatch(3, &nominees), 3u);
  batched.Restore(nominees[2]);
  batched.Restore(nominees[0]);

  ASSERT_EQ(reference.Evict(), std::optional<PageId>(nominees[0]));
  ASSERT_EQ(reference.Evict(), std::optional<PageId>(nominees[1]));
  reference.Restore(nominees[0]);

  EXPECT_EQ(batched.ResidentCount(), reference.ResidentCount());
  while (true) {
    auto a = batched.Evict();
    auto b = reference.Evict();
    EXPECT_EQ(a, b);
    if (!a.has_value() || !b.has_value()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVictimIndexes, LruKEvictBatchTest,
                         ::testing::Values(VictimIndex::kLazyHeap,
                                           VictimIndex::kOrderedSet,
                                           VictimIndex::kLinear));

}  // namespace
}  // namespace lruk
