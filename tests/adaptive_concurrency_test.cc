// Adaptive meta-policy under multi-threaded churn (TSan/ASan target — the
// sanitizer CI matrix runs this suite by name).
//
// Eight threads hammer a sharded pool whose shards each run
// `adaptive:lruk2+arc+2q` with batched access publishing and the
// latch-free optimistic hit path — the deepest concurrent composition the
// meta-policy rides in: buffered references drain into
// RecordAccessBatch under the shard latch, evictions flow through the
// active expert with victim booking, and switch decisions fire on drain
// ticks. Asserted invariants:
//
//  * Exact fetch accounting: hits + misses == total fetches, no failures.
//  * Regret accounting: every ghost saw every observed reference, so the
//    summed per-expert ghost misses bound the meta-policy's windowed live
//    misses (sum(expert window misses) >= window_misses would be too
//    strong shard-merged; the cumulative form below is the invariant).
//  * No switch lands mid-EvictBatch: AdaptivePolicy carries an
//    LRUK_ASSERT (active in every build type) on that path, so this run
//    doubles as its stress test — an abort here is the failure.
//  * MetaStats snapshots are coherent: expert lists congruent across
//    shards, active_refs sum to the references the shards applied.

#include <atomic>
#include <thread>
#include <vector>

#include "bufferpool/sharded_buffer_pool.h"
#include "core/policy_factory.h"
#include "differential_harness.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

using difftest::AllocateDb;

class AdaptiveConcurrencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AdaptiveConcurrencyTest, RegretAccountingHoldsUnderChurn) {
  const size_t batch_capacity = GetParam();
  constexpr size_t kFrames = 256;
  constexpr size_t kShards = 4;
  constexpr uint64_t kDbPages = 1024;
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 5000;

  SimDiskManager disk;
  auto spec = ParsePolicySpec("adaptive:lruk2+arc+2q");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // Tighten the switching knobs so expert churn actually happens during
  // the run (the default window is sized for long-lived pools).
  spec->adaptive.window_refs = 1024;
  spec->adaptive.window_buckets = 4;
  spec->adaptive.cooldown_refs = 256;
  spec->adaptive.min_window_misses = 4;
  auto factory = MakeShardPolicyFactory(*spec);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();

  ShardedBufferPool pool(kFrames, kShards, &disk, *factory,
                         BufferPoolOptions{.batch_capacity = batch_capacity,
                                           .batch_stripes = 4,
                                           .optimistic_hits = true});

  std::vector<PageId> pages = AllocateDb(pool, kDbPages);
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RecursiveSkewDistribution dist(0.8, 0.2, kDbPages);
      RandomEngine rng(0xADA1 + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(0.1);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) {
          ++failures;
          continue;
        }
        if (i % 1024 == 0) (void)pool.FlushPage(p);
        (void)pool.UnpinPage(p, false);
        if (i % 2048 == 0) (void)pool.MetaStats();  // Concurrent snapshots.
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);  // 64 frames/shard, <= 8 pinned at once.

  BufferPoolStats totals = pool.stats();  // Draining observation point.
  EXPECT_EQ(totals.hits + totals.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);

  MetaPolicyStats meta = pool.MetaStats();
  EXPECT_TRUE(meta.adaptive);
  ASSERT_EQ(meta.experts.size(), 3u);
  EXPECT_EQ(meta.experts[0].name, "lruk2");
  EXPECT_EQ(meta.experts[1].name, "arc");
  EXPECT_EQ(meta.experts[2].name, "2q");

  // Every ghost observed every applied reference, so each expert's
  // cumulative ghost misses — and a fortiori their sum — bound the
  // windowed live misses the switch decision reads.
  uint64_t ghost_sum = 0;
  for (const MetaExpertStats& e : meta.experts) {
    EXPECT_GT(e.ghost_misses, 0u);
    ghost_sum += e.ghost_misses;
  }
  EXPECT_GE(ghost_sum, meta.window_misses);
  EXPECT_LE(meta.window_misses, meta.total_misses);

  // Reference accounting: the references the experts observed (one per
  // applied RecordAccess/Admit across all shards) can never exceed the
  // fetch stream plus the initial admissions; with optimistic publishing
  // some records may drop (counted by the pools), never double-apply.
  uint64_t active_refs = 0;
  for (const MetaExpertStats& e : meta.experts) active_refs += e.active_refs;
  const uint64_t upper =
      static_cast<uint64_t>(kThreads) * kOpsPerThread + kDbPages;
  EXPECT_LE(active_refs, upper);
  EXPECT_EQ(active_refs + totals.access_drops, upper);

  // Per-shard snapshots are coherent with the merged view.
  uint64_t shard_misses = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    MetaPolicyStats s = pool.shard(i).MetaStats();
    EXPECT_TRUE(s.adaptive);
    ASSERT_EQ(s.experts.size(), 3u);
    shard_misses += s.total_misses;
  }
  EXPECT_EQ(shard_misses, meta.total_misses);

  ASSERT_TRUE(pool.FlushAll().ok());
}

INSTANTIATE_TEST_SUITE_P(CapacityEightAndSixtyFour, AdaptiveConcurrencyTest,
                         ::testing::Values<size_t>(8, 64));

}  // namespace
}  // namespace lruk
