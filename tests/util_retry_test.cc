// Unit tests for util/retry.h: attempt counting, backoff schedule via an
// injectable sleep, and the retryable-error taxonomy.

#include "util/retry.h"

#include <vector>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(RetryTest, DefaultOptionsRunOnce) {
  RetryOptions options;  // max_attempts = 1: retries off.
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::IoError("boom");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kIoError);
}

TEST(RetryTest, SucceedsFirstTry) {
  RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::Ok();
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_TRUE(outcome.status.ok());
}

TEST(RetryTest, AbsorbsTransientFailure) {
  RetryOptions options;
  options.max_attempts = 3;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return calls < 3 ? Status::IoError("transient") : Status::Ok();
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_TRUE(outcome.status.ok());
}

TEST(RetryTest, ExhaustsAttemptsOnPermanentFailure) {
  RetryOptions options;
  options.max_attempts = 4;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::IoError("permanent");
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(outcome.retries, 3u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kIoError);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::NotFound("semantic error");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
}

TEST(RetryTest, BackoffScheduleIsExponential) {
  RetryOptions options;
  options.max_attempts = 4;
  options.backoff_micros = 10.0;
  options.backoff_multiplier = 3.0;
  std::vector<double> slept;
  options.sleep = [&](double micros) { slept.push_back(micros); };
  RetryOutcome outcome =
      RetryWithBackoff(options, [] { return Status::IoError("always"); });
  EXPECT_EQ(outcome.retries, 3u);
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 10.0);
  EXPECT_DOUBLE_EQ(slept[1], 30.0);
  EXPECT_DOUBLE_EQ(slept[2], 90.0);
}

TEST(RetryTest, NullSleepRetriesWithoutWaiting) {
  RetryOptions options;
  options.max_attempts = 3;
  options.backoff_micros = 1e9;  // Would hang if the sleep ran.
  options.sleep = nullptr;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::IoError("always");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.retries, 2u);
}

TEST(RetryTest, ZeroAndNegativeAttemptsClampToOne) {
  for (int attempts : {0, -3}) {
    RetryOptions options;
    options.max_attempts = attempts;
    int calls = 0;
    (void)RetryWithBackoff(options, [&] {
      ++calls;
      return Status::IoError("boom");
    });
    EXPECT_EQ(calls, 1);
  }
}

TEST(RetryTest, IsRetryableErrorTaxonomy) {
  EXPECT_TRUE(IsRetryableError(StatusCode::kIoError));
  EXPECT_FALSE(IsRetryableError(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableError(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableError(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableError(StatusCode::kResourceExhausted));
}

TEST(RetryTest, SystemSleeperIsCallable) {
  // Smoke only: a sub-millisecond nap must return (no deadlock, no throw).
  auto sleeper = SystemSleeper();
  ASSERT_TRUE(sleeper != nullptr);
  sleeper(50.0);
}

}  // namespace
}  // namespace lruk
