// Sharded-pool scaling benchmark: multi-threaded Zipfian fetch/unpin
// throughput of ShardedBufferPool (LRU-2 per shard) swept over shard
// count (1/2/4/8) x thread count (1/2/4/8), against the single-latch
// BufferPool as the baseline. Reports ops/sec and the aggregate hit
// ratio per cell, then two shape checks:
//
//  * throughput: 4 shards / 8 threads must reach >= 2x the single-latch
//    pool's 8-thread ops/sec (the scaling claim, measured not asserted).
//    Parallel scaling is unobservable without parallel hardware, so on
//    machines with fewer than 4 cores the criterion is reported but not
//    enforced.
//  * fidelity: sharding must not cost hit ratio — the 4-shard aggregate
//    hit ratio stays within 2 points of the single-pool baseline.
//
// Flags: --json <path> writes machine-readable results; --quick shrinks
// the per-cell op count for CI smoke runs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr size_t kFrames = 1024;
constexpr uint64_t kDbPages = 8192;
constexpr double kWriteFraction = 0.1;

struct CellResult {
  std::string pool;
  size_t shards = 1;
  int threads = 1;
  double ops_per_sec = 0.0;
  double hit_ratio = 0.0;
};

// Allocates the database and hammers `pool` with `threads` workers doing
// Zipfian 80-20 fetch/unpin cycles (10% writes). `total_ops` is split
// across the cell's threads.
CellResult RunCell(PoolInterface& pool, int threads, uint64_t total_ops) {
  std::vector<PageId> pages;
  pages.reserve(kDbPages);
  for (uint64_t i = 0; i < kDbPages; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   page.status().ToString().c_str());
      return {};
    }
    pages.push_back((*page)->id());
    (void)pool.UnpinPage((*page)->id(), false);
  }
  pool.ResetStats();

  RecursiveSkewDistribution dist(0.8, 0.2, kDbPages);
  uint64_t ops_per_thread = total_ops / static_cast<uint64_t>(threads);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RandomEngine rng(0xBEEF + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(kWriteFraction);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) continue;  // Owning shard momentarily full.
        (void)pool.UnpinPage(p, false);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  CellResult result;
  result.threads = threads;
  uint64_t total = ops_per_thread * static_cast<uint64_t>(threads);
  result.ops_per_sec = seconds > 0 ? static_cast<double>(total) / seconds : 0;
  result.hit_ratio = pool.stats().HitRatio();
  return result;
}

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<CellResult>& cells, unsigned cores,
               uint64_t ops, double speedup, double hr_delta,
               bool scaling_ok, bool fidelity_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_sharded_pool\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f,
               ",\n  \"cores\": %u,\n  \"frames\": %zu,\n"
               "  \"db_pages\": %llu,\n  \"ops_per_cell\": %llu,\n"
               "  \"cells\": [\n",
               cores, kFrames, static_cast<unsigned long long>(kDbPages),
               static_cast<unsigned long long>(ops));
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"pool\": \"%s\", \"shards\": %zu, \"threads\": %d, "
                 "\"ops_per_sec\": %.1f, \"hit_ratio\": %.4f}%s\n",
                 c.pool.c_str(), c.shards, c.threads, c.ops_per_sec,
                 c.hit_ratio, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"speedup_4shard_8t_vs_single_8t\": %.3f,\n"
               "    \"hit_ratio_delta\": %.4f,\n"
               "    \"scaling_ok\": %s,\n    \"fidelity_ok\": %s\n  }\n}\n",
               speedup, hr_delta, scaling_ok ? "true" : "false",
               fidelity_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  // Split across the cell's threads.
  const uint64_t total_ops = quick ? 60000 : 400000;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};
  unsigned cores = std::thread::hardware_concurrency();

  std::printf("Sharded vs single-latch buffer pool, Zipfian 80-20 "
              "fetch/unpin (%llu pages, %zu frames, LRU-2, %u cores)\n\n",
              static_cast<unsigned long long>(kDbPages), kFrames, cores);

  auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
  if (!factory.ok()) {
    std::fprintf(stderr, "factory: %s\n",
                 factory.status().ToString().c_str());
    return 1;
  }

  AsciiTable table({"pool", "threads", "ops/sec", "hit ratio"});
  std::vector<CellResult> cells;
  // cell_ops[shards][threads] for the shape checks; row 0 = single latch.
  double single_8t_ops = 0, single_8t_hr = 0;
  double sharded4_8t_ops = 0, sharded4_8t_hr = 0;

  for (int threads : thread_counts) {
    SimDiskOptions disk_options;
    disk_options.read_micros = 0.0;  // Measure the substrate, not fake I/O.
    disk_options.write_micros = 0.0;
    SimDiskManager disk(disk_options);
    auto policy = MakePolicy(PolicyConfig::LruK(2), PolicyContext{});
    BufferPool pool(kFrames, &disk, std::move(*policy));
    CellResult r = RunCell(pool, threads, total_ops);
    r.pool = "single-latch";
    r.shards = 1;
    if (threads == 8) {
      single_8t_ops = r.ops_per_sec;
      single_8t_hr = r.hit_ratio;
    }
    table.AddRow({"single-latch", AsciiTable::Integer(threads),
                  AsciiTable::Integer(static_cast<uint64_t>(r.ops_per_sec)),
                  AsciiTable::Fixed(r.hit_ratio, 3)});
    cells.push_back(r);
  }

  for (size_t shards : shard_counts) {
    for (int threads : thread_counts) {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      ShardedBufferPool pool(kFrames, shards, &disk, *factory);
      CellResult r = RunCell(pool, threads, total_ops);
      char label[32];
      std::snprintf(label, sizeof(label), "sharded x%zu", shards);
      r.pool = label;
      r.shards = shards;
      if (shards == 4 && threads == 8) {
        sharded4_8t_ops = r.ops_per_sec;
        sharded4_8t_hr = r.hit_ratio;
      }
      table.AddRow({label, AsciiTable::Integer(threads),
                    AsciiTable::Integer(static_cast<uint64_t>(r.ops_per_sec)),
                    AsciiTable::Fixed(r.hit_ratio, 3)});
      cells.push_back(r);
    }
  }
  table.Print();

  double speedup =
      single_8t_ops > 0 ? sharded4_8t_ops / single_8t_ops : 0.0;
  double hr_delta = sharded4_8t_hr - single_8t_hr;
  std::printf("\nspeedup (4 shards / 8 threads vs single-latch / 8 "
              "threads): %.2fx\n",
              speedup);
  std::printf("aggregate hit ratio: sharded %.3f vs single %.3f "
              "(delta %+.3f)\n",
              sharded4_8t_hr, single_8t_hr, hr_delta);

  bool scaling_ok = speedup >= 2.0;
  if (cores < 4) {
    // One or two cores cannot exhibit parallel scaling; report the
    // measurement but do not fail the shape check on such machines.
    std::printf("note: only %u hardware threads — >=2x scaling needs >=4 "
                "cores, reporting without enforcement\n",
                cores);
    scaling_ok = true;
  }
  bool fidelity_ok = hr_delta >= -0.02 && hr_delta <= 0.02;
  std::printf("shape: 4-shard/8-thread throughput >= 2x single-latch "
              "(or <4 cores): %s\n",
              scaling_ok ? "yes" : "NO");
  std::printf("shape: 4-shard aggregate hit ratio within 2 points of "
              "single pool: %s\n",
              fidelity_ok ? "yes" : "NO");
  if (json_path != nullptr) {
    WriteJson(json_path, provenance, cells, cores, total_ops, speedup,
              hr_delta, scaling_ok, fidelity_ok);
    std::printf("wrote %s\n", json_path);
  }
  return scaling_ok && fidelity_ok ? 0 : 1;
}
