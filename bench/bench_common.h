// Shared plumbing for the hand-rolled benches: provenance stamping for the
// BENCH_*.json artifacts. A result file without the producing commit and
// build flavour is unreviewable (a Debug-built number silently compared to
// a Release one, a stale JSON from three commits ago), so run_quick.sh
// passes --git-sha / --build-type / --sanitizer to every bench and each
// bench embeds them verbatim in its JSON.

#ifndef LRUK_BENCH_BENCH_COMMON_H_
#define LRUK_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

namespace lruk {

struct BenchProvenance {
  std::string git_sha = "unknown";
  std::string build_type = "unknown";
  std::string sanitizer = "none";
  // Hardware cores on the machine that produced the numbers (0 when the
  // runtime cannot tell). Threaded-bench results are meaningless to
  // compare across core counts, so the artifact records it.
  unsigned cores = std::thread::hardware_concurrency();
  // Worker/client threads the bench actually used; benches that sweep
  // thread counts stamp the maximum swept. 0 = single-threaded bench.
  unsigned threads = 0;
};

// Consumes one provenance flag (plus its value) at argv[*i] if present;
// returns true and advances *i past the value on a match. Call from the
// bench's flag loop before rejecting unknown arguments.
inline bool ParseProvenanceFlag(int argc, char** argv, int* i,
                                BenchProvenance* provenance) {
  auto take = [&](const char* flag, std::string* out) {
    if (std::strcmp(argv[*i], flag) != 0 || *i + 1 >= argc) return false;
    *out = argv[++*i];
    return true;
  };
  return take("--git-sha", &provenance->git_sha) ||
         take("--build-type", &provenance->build_type) ||
         take("--sanitizer", &provenance->sanitizer);
}

// Emits `"provenance": {...}` (no trailing comma or newline) into an
// open JSON object.
inline void WriteProvenanceJson(std::FILE* f,
                                const BenchProvenance& provenance) {
  std::fprintf(f,
               "  \"provenance\": {\"git_sha\": \"%s\", "
               "\"build_type\": \"%s\", \"sanitizer\": \"%s\", "
               "\"cores\": %u, \"threads\": %u}",
               provenance.git_sha.c_str(), provenance.build_type.c_str(),
               provenance.sanitizer.c_str(), provenance.cores,
               provenance.threads);
}

}  // namespace lruk

#endif  // LRUK_BENCH_BENCH_COMMON_H_
