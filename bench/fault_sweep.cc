// Fault-sweep microbenchmark: a Zipfian fetch/unpin workload driven through
// both buffer pools over a FaultInjectingDiskManager at several injected
// fault rates, with bounded retry enabled. Reports throughput, hit ratio
// and the failure/retry counters the pools surface, and exercises the two
// properties the fault subsystem promises:
//
//  * determinism — every cell runs twice with the same (seed, schedule);
//    the injected fault traces must be identical event-by-event, and the
//    pool counters must match exactly.
//  * recovery — after Heal() a FlushAll must succeed (failed write-backs
//    kept their dirty flags, so nothing is stranded) and drain the pool's
//    dirty set to the disk.
//
// Shape checks (CI greps for ": NO"):
//  * accounting — hits + misses == ops issued in every cell, faults or not.
//  * replay — both runs of every cell produced identical traces + stats.
//  * recovery — post-Heal FlushAll succeeded in every cell.
//
// Flags: --json <path> writes machine-readable results (BENCH_faults.json
// trajectory); --quick shrinks the per-cell op count for CI smoke runs.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/fault_injecting_disk_manager.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr size_t kFrames = 64;
constexpr uint64_t kDbPages = 512;
constexpr double kWriteFraction = 0.2;

struct Cell {
  std::string pool;
  double fault_rate = 0.0;
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double ops_per_sec = 0.0;
  double hit_ratio = 0.0;
  uint64_t injected_events = 0;
  uint64_t read_failures = 0;   // Pool-level, after retries.
  uint64_t write_failures = 0;  // Pool-level, after retries.
  uint64_t retries = 0;         // Pool-level re-issues.
  bool replay_identical = false;
  bool accounting_exact = false;
  bool recovery_clean = false;
};

struct RunResult {
  std::vector<FaultEvent> trace;
  BufferPoolStats stats;
  bool flush_ok = false;
  double seconds = 0.0;
  bool setup_ok = false;
};

// One deterministic pass: allocate the database fault-free, arm the
// probabilistic schedule, run the Zipfian churn single-threaded (the op
// sequence must be identical between runs for the trace comparison to be
// meaningful), then heal and flush.
RunResult RunOnce(const std::string& pool_kind, double rate, uint64_t seed,
                  uint64_t total_ops) {
  RunResult result;
  SimDiskOptions disk_options;
  disk_options.read_micros = 0.0;
  disk_options.write_micros = 0.0;
  SimDiskManager base(disk_options);
  FaultInjectingDiskManager disk(&base, seed);

  BufferPoolOptions options;
  options.io_retry.max_attempts = 3;  // Null sleep: retry immediately.
  std::unique_ptr<PoolInterface> pool;
  if (pool_kind == "single-latch") {
    pool = std::make_unique<BufferPool>(
        kFrames, &disk,
        std::make_unique<LruKPolicy>(
            LruKOptions{.k = 2, .capacity_hint = kFrames}),
        options);
  } else {
    auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
    if (!factory.ok()) {
      std::fprintf(stderr, "factory: %s\n",
                   factory.status().ToString().c_str());
      return result;
    }
    pool = std::make_unique<ShardedBufferPool>(kFrames, /*num_shards=*/4,
                                               &disk, *factory, options);
  }

  std::vector<PageId> pages;
  pages.reserve(kDbPages);
  for (uint64_t i = 0; i < kDbPages; ++i) {
    auto page = pool->NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   page.status().ToString().c_str());
      return result;
    }
    pages.push_back((*page)->id());
    (void)pool->UnpinPage((*page)->id(), false);
  }
  if (!pool->FlushAll().ok()) return result;
  pool->ResetStats();
  disk.ResetStats();
  result.setup_ok = true;

  if (rate > 0.0) {
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, rate));
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, rate));
  }

  RecursiveSkewDistribution dist(0.8, 0.2, kDbPages);
  RandomEngine rng(seed ^ 0x9E3779B97F4A7C15ull);
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < total_ops; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(kWriteFraction);
    auto page =
        pool->FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    if (page.ok()) (void)pool->UnpinPage(p, write);
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  result.trace = disk.Trace();
  result.stats = pool->stats();
  disk.Heal();
  result.flush_ok = pool->FlushAll().ok();
  return result;
}

bool StatsEqual(const BufferPoolStats& a, const BufferPoolStats& b) {
  return a.hits == b.hits && a.misses == b.misses &&
         a.evictions == b.evictions &&
         a.dirty_writebacks == b.dirty_writebacks &&
         a.read_failures == b.read_failures &&
         a.write_failures == b.write_failures && a.retries == b.retries;
}

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<Cell>& cells, uint64_t ops,
               bool accounting_ok, bool replay_ok, bool recovery_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_sweep\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f,
               ",\n  \"frames\": %zu,\n  \"db_pages\": %llu,\n"
               "  \"ops_per_cell\": %llu,\n  \"cells\": [\n",
               kFrames, static_cast<unsigned long long>(kDbPages),
               static_cast<unsigned long long>(ops));
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"pool\": \"%s\", \"fault_rate\": %.2f, "
        "\"ops_per_sec\": %.1f, \"hit_ratio\": %.4f, "
        "\"hits\": %llu, \"misses\": %llu, \"injected_events\": %llu, "
        "\"read_failures\": %llu, \"write_failures\": %llu, "
        "\"retries\": %llu, \"replay_identical\": %s, "
        "\"recovery_clean\": %s}%s\n",
        c.pool.c_str(), c.fault_rate, c.ops_per_sec, c.hit_ratio,
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.injected_events),
        static_cast<unsigned long long>(c.read_failures),
        static_cast<unsigned long long>(c.write_failures),
        static_cast<unsigned long long>(c.retries),
        c.replay_identical ? "true" : "false",
        c.recovery_clean ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"accounting_exact\": %s,\n"
               "    \"replay_identical\": %s,\n"
               "    \"recovery_clean\": %s\n  }\n}\n",
               accounting_ok ? "true" : "false", replay_ok ? "true" : "false",
               recovery_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint64_t total_ops = quick ? 20000 : 200000;
  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.15};
  const std::vector<std::string> pools = {"single-latch", "sharded x4"};

  std::printf(
      "Fault sweep: Zipfian 80-20 fetch/unpin (%llu pages, %zu frames, "
      "LRU-2, %.0f%% writes, retry x3) over injected read+write faults\n\n",
      static_cast<unsigned long long>(kDbPages), kFrames,
      kWriteFraction * 100);

  std::vector<Cell> cells;
  AsciiTable table({"pool", "fault rate", "ops/sec", "hit ratio", "injected",
                    "read fails", "write fails", "retries"});

  bool all_setup_ok = true;
  for (size_t pi = 0; pi < pools.size(); ++pi) {
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      uint64_t seed = 0xF5EEDull + pi * 131 + ri;
      RunResult first = RunOnce(pools[pi], rates[ri], seed, total_ops);
      RunResult second = RunOnce(pools[pi], rates[ri], seed, total_ops);
      if (!first.setup_ok || !second.setup_ok) {
        all_setup_ok = false;
        continue;
      }
      Cell cell;
      cell.pool = pools[pi];
      cell.fault_rate = rates[ri];
      cell.ops = total_ops;
      cell.hits = first.stats.hits;
      cell.misses = first.stats.misses;
      cell.ops_per_sec = first.seconds > 0
                             ? static_cast<double>(total_ops) / first.seconds
                             : 0.0;
      cell.hit_ratio = first.stats.HitRatio();
      cell.injected_events = first.trace.size();
      cell.read_failures = first.stats.read_failures;
      cell.write_failures = first.stats.write_failures;
      cell.retries = first.stats.retries;
      cell.replay_identical = first.trace == second.trace &&
                              StatsEqual(first.stats, second.stats);
      cell.accounting_exact = cell.hits + cell.misses == total_ops;
      cell.recovery_clean = first.flush_ok && second.flush_ok;
      table.AddRow({cell.pool, AsciiTable::Fixed(cell.fault_rate, 2),
                    AsciiTable::Integer(
                        static_cast<uint64_t>(cell.ops_per_sec)),
                    AsciiTable::Fixed(cell.hit_ratio, 3),
                    AsciiTable::Integer(cell.injected_events),
                    AsciiTable::Integer(cell.read_failures),
                    AsciiTable::Integer(cell.write_failures),
                    AsciiTable::Integer(cell.retries)});
      cells.push_back(cell);
    }
  }
  table.Print();

  bool accounting_ok = all_setup_ok;
  bool replay_ok = all_setup_ok;
  bool recovery_ok = all_setup_ok;
  for (const Cell& c : cells) {
    if (!c.accounting_exact) {
      accounting_ok = false;
      std::printf("accounting mismatch: %s rate=%.2f: %llu + %llu != %llu\n",
                  c.pool.c_str(), c.fault_rate,
                  static_cast<unsigned long long>(c.hits),
                  static_cast<unsigned long long>(c.misses),
                  static_cast<unsigned long long>(c.ops));
    }
    if (!c.replay_identical) {
      replay_ok = false;
      std::printf("replay divergence: %s rate=%.2f\n", c.pool.c_str(),
                  c.fault_rate);
    }
    if (!c.recovery_clean) {
      recovery_ok = false;
      std::printf("post-heal FlushAll failed: %s rate=%.2f\n", c.pool.c_str(),
                  c.fault_rate);
    }
  }

  std::printf("\nshape: hit+miss totals exactly equal ops in every cell: %s\n",
              accounting_ok ? "yes" : "NO");
  std::printf("shape: same (seed, schedule) replays the identical fault "
              "trace and stats: %s\n",
              replay_ok ? "yes" : "NO");
  std::printf("shape: post-heal FlushAll drains every cell cleanly: %s\n",
              recovery_ok ? "yes" : "NO");

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, cells, total_ops, accounting_ok,
              replay_ok, recovery_ok);
    std::printf("wrote %s\n", json_path);
  }
  return accounting_ok && replay_ok && recovery_ok ? 0 : 1;
}
