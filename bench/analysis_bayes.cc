// Numerical companion to Section 3: evaluates formulas (3.6) and (3.7) on
// the two-pool probability vector, demonstrates Lemma 3.6's monotonicity
// (the fact that makes Backward K-distance ordering optimal), compares the
// expected cost (3.9) of the LRU-K buffer against inverted buffers, and
// prints the Five Minute Rule sizing from Section 2.1.2.

#include <cstdio>
#include <vector>

#include "analysis/bayes.h"
#include "sim/cost_model.h"
#include "sim/table.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  // The two-pool beta vector (20 hot pages at 1/40, 380 cold at 1/760):
  // small enough to print, same structure as Table 4.1's workload.
  TwoPoolOptions topt;
  topt.n1 = 20;
  topt.n2 = 380;
  TwoPoolWorkload workload(topt);
  std::vector<double> beta = *workload.Probabilities();

  std::printf("Section 3 formulas on the two-pool beta vector "
              "(N1=%llu at %.4f, N2=%llu at %.6f)\n\n",
              static_cast<unsigned long long>(topt.n1), beta.front(),
              static_cast<unsigned long long>(topt.n2), beta.back());

  // Formula (3.7): E(P(i) | b_t(i,K) = k) for K = 1, 2, 3.
  AsciiTable estimates({"k", "E[P|b,K=1]", "E[P|b,K=2]", "E[P|b,K=3]",
                        "P(hot|b,K=2)"});
  for (uint64_t k : {3u, 5u, 10u, 20u, 40u, 80u, 160u, 320u, 640u}) {
    auto posterior = PosteriorComponentProbabilities(beta, 2, k);
    double hot_mass = 0.0;
    for (uint64_t j = 0; j < topt.n1; ++j) hot_mass += posterior[j];
    estimates.AddRow(
        {AsciiTable::Integer(k),
         AsciiTable::Fixed(EstimatedReferenceProbability(beta, 1, k), 6),
         AsciiTable::Fixed(EstimatedReferenceProbability(beta, 2, k), 6),
         AsciiTable::Fixed(EstimatedReferenceProbability(beta, 3, k), 6),
         AsciiTable::Fixed(hot_mass, 4)});
  }
  estimates.Print();
  std::printf("\nLemma 3.6 (estimate strictly decreasing in k):\n");
  for (int k = 1; k <= 3; ++k) {
    std::printf("  K=%d over k in [K, 500]: %s\n", k,
                EstimateIsStrictlyDecreasing(beta, k, 500)
                    ? "strictly decreasing"
                    : "VIOLATED");
  }

  // Theorem 3.8 flavor: expected cost (3.9) of holding the m pages with
  // smallest backward distance, versus holding the m *largest* (the
  // anti-LRU-K buffer), on a synthetic distance assignment where hot pages
  // have small distances.
  std::printf("\nExpected cost of the next reference (formula 3.9), "
              "m = 25 buffers, 400 pages:\n");
  std::vector<uint64_t> distances(beta.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    // Hot pages (ids < n1) recently seen twice; cold pages long ago.
    distances[i] = i < topt.n1 ? 2 + i : 300 + 2 * i;
  }
  double lruk_cost = ExpectedCostOfTopM(beta, 2, distances, 25);
  // Anti-policy: hold the 25 largest distances.
  std::vector<uint64_t> inverted(distances.rbegin(), distances.rend());
  std::vector<uint64_t> worst(inverted.begin(), inverted.begin() + 25);
  double anti_cost = 1.0;
  {
    double covered = 0.0;
    for (uint64_t d : worst) {
      covered += EstimatedReferenceProbability(beta, 2, d);
    }
    anti_cost -= covered;
  }
  std::printf("  LRU-2 buffer (25 smallest b): %.4f\n", lruk_cost);
  std::printf("  inverted buffer (25 largest b): %.4f\n", anti_cost);
  std::printf("  shape: LRU-2's buffer has lower expected cost: %s\n",
              lruk_cost < anti_cost ? "yes" : "NO");

  // Section 2.1.2 sizing.
  std::printf("\nFive Minute Rule sizing ([GRAYPUT] 1987 parameters):\n");
  std::printf("  break-even interarrival: %.1f seconds\n",
              FiveMinuteRuleBreakEvenSeconds());
  for (int k = 1; k <= 3; ++k) {
    std::printf("  suggested Retained Information Period for LRU-%d: "
                "%.1f seconds\n",
                k, SuggestedRetainedInformationSeconds(k));
  }
  return 0;
}
