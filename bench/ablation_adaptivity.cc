// Adaptivity ablation (Section 4.1's LRU-2-vs-LRU-3 discussion and
// Section 4.3's LFU caveat): how K and the aging-free LFU behave when the
// access pattern is stable versus when the hot spot moves.
//
// Stable phase: a fixed hot window. The paper: "for K > 2, the LRU-K
// algorithm provides somewhat improved performance over LRU-2 for stable
// patterns of access."
// Moving phase: the hot window shifts every epoch. The paper: LRU-3 "is
// less responsive to changes in access patterns", and LFU "does not adapt
// itself to evolving access patterns" at all.

#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/moving_hotspot.h"

namespace {

lruk::MovingHotspotOptions BaseOptions() {
  lruk::MovingHotspotOptions mopt;
  mopt.num_pages = 10000;
  mopt.hot_pages = 100;
  mopt.hot_probability = 0.9;
  mopt.shift = 2000;  // A near-total hot-set change per epoch.
  mopt.seed = 19936;
  return mopt;
}

}  // namespace

int main() {
  using namespace lruk;

  constexpr size_t kBuffer = 150;
  const std::vector<const char*> kPolicies = {
      "LRU", "LRU-2", "LRU-3", "LRU-4", "LFU", "2Q", "ARC"};

  std::printf("Adaptivity ablation: B=%zu, hot window 100/10000 pages "
              "(90%% of refs)\n\n", kBuffer);

  AsciiTable table({"policy", "stable", "moving(epoch=20k)",
                    "moving(epoch=5k)", "adaptivity-loss"});

  std::vector<double> stable_ratios;
  std::vector<double> moving_ratios;

  for (const char* name : kPolicies) {
    auto config = ParsePolicyName(name);
    if (!config) return 1;

    // Stable: one epoch long enough to never shift.
    MovingHotspotOptions stable_opt = BaseOptions();
    stable_opt.epoch_length = uint64_t{1} << 62;
    MovingHotspotWorkload stable_gen(stable_opt);
    SimOptions sim;
    sim.capacity = kBuffer;
    sim.warmup_refs = 50000;
    sim.measure_refs = 150000;
    sim.track_classes = false;
    auto stable = SimulatePolicy(*config, stable_gen, sim);
    if (!stable.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   stable.status().ToString().c_str());
      return 1;
    }

    // Moving: the window jumps every 20k (slow) and every 5k (fast) refs.
    MovingHotspotOptions slow_opt = BaseOptions();
    slow_opt.epoch_length = 20000;
    MovingHotspotWorkload slow_gen(slow_opt);
    auto slow = SimulatePolicy(*config, slow_gen, sim);
    if (!slow.ok()) return 1;

    MovingHotspotOptions fast_opt = BaseOptions();
    fast_opt.epoch_length = 5000;
    MovingHotspotWorkload fast_gen(fast_opt);
    auto fast = SimulatePolicy(*config, fast_gen, sim);
    if (!fast.ok()) return 1;

    stable_ratios.push_back(stable->HitRatio());
    moving_ratios.push_back(fast->HitRatio());

    table.AddRow({name, AsciiTable::Fixed(stable->HitRatio(), 3),
                  AsciiTable::Fixed(slow->HitRatio(), 3),
                  AsciiTable::Fixed(fast->HitRatio(), 3),
                  AsciiTable::Fixed(stable->HitRatio() - fast->HitRatio(),
                                    3)});
  }

  table.Print();

  // Index map: 0 LRU, 1 LRU-2, 2 LRU-3, 3 LRU-4, 4 LFU, 5 2Q.
  bool k3_wins_stable = stable_ratios[2] >= stable_ratios[1] - 0.005;
  bool k2_wins_moving = moving_ratios[1] >= moving_ratios[2] - 0.005;
  bool lfu_lags_moving = moving_ratios[4] < moving_ratios[1];
  std::printf("\nshape: LRU-3 >= LRU-2 on the stable pattern: %s\n",
              k3_wins_stable ? "yes" : "NO");
  std::printf("shape: LRU-2 >= LRU-3 under fast-moving hot spots: %s\n",
              k2_wins_moving ? "yes" : "NO");
  std::printf("shape: LFU trails LRU-2 under moving hot spots: %s\n",
              lfu_lags_moving ? "yes" : "NO");
  return 0;
}
