// Scale invariance (Section 4.1, final paragraph): "note that the same
// results hold if all page numbers, N1, N2 and B are multiplied by 1000.
// The smaller numbers were used in simulation to save effort." This bench
// verifies the claim at x1, x10 and x50 scale (x1000 would also work but
// adds nothing beyond runtime): hit ratios at corresponding (N1, N2, B)
// points must agree across scales.

#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  const std::vector<uint64_t> kScales = {1, 10, 50};
  // Base (scale 1) buffer sizes: the knee region of Table 4.1.
  const std::vector<size_t> kBaseB = {60, 100, 140, 300};

  std::printf("Scale invariance of the two-pool experiment "
              "(N1=100s, N2=10000s, B=bs for scale s)\n\n");

  AsciiTable table({"scale", "B(base)", "LRU-1", "LRU-2", "A0"});
  // ratios[scale_index][b_index][policy]
  std::vector<std::vector<std::vector<double>>> ratios(kScales.size());

  for (size_t si = 0; si < kScales.size(); ++si) {
    uint64_t scale = kScales[si];
    TwoPoolOptions topt;
    topt.n1 = 100 * scale;
    topt.n2 = 10000 * scale;
    topt.seed = 19947 + scale;
    ratios[si].resize(kBaseB.size());

    for (size_t bi = 0; bi < kBaseB.size(); ++bi) {
      TwoPoolWorkload gen(topt);
      SimOptions sim;
      sim.capacity = kBaseB[bi] * scale;
      sim.warmup_refs = 10 * topt.n1;
      sim.measure_refs = 300 * topt.n1;
      sim.track_classes = false;

      for (const PolicyConfig& config :
           {PolicyConfig::Lru(), PolicyConfig::LruK(2), PolicyConfig::A0()}) {
        auto result = SimulatePolicy(config, gen, sim);
        if (!result.ok()) {
          std::fprintf(stderr, "scale %llu: %s\n",
                       static_cast<unsigned long long>(scale),
                       result.status().ToString().c_str());
          return 1;
        }
        ratios[si][bi].push_back(result->HitRatio());
      }
      char scale_label[24];
      std::snprintf(scale_label, sizeof(scale_label), "x%llu",
                    static_cast<unsigned long long>(scale));
      table.AddRow({scale_label,
                    AsciiTable::Integer(kBaseB[bi]),
                    AsciiTable::Fixed(ratios[si][bi][0], 3),
                    AsciiTable::Fixed(ratios[si][bi][1], 3),
                    AsciiTable::Fixed(ratios[si][bi][2], 3)});
    }
  }
  table.Print();

  // Every scaled point must agree with the base scale within noise.
  double worst = 0.0;
  for (size_t si = 1; si < kScales.size(); ++si) {
    for (size_t bi = 0; bi < kBaseB.size(); ++bi) {
      for (size_t pi = 0; pi < 3; ++pi) {
        double diff = ratios[si][bi][pi] - ratios[0][bi][pi];
        if (diff < 0) diff = -diff;
        if (diff > worst) worst = diff;
      }
    }
  }
  std::printf("\nshape: hit ratios are scale-invariant "
              "(max |difference| = %.3f, threshold 0.02): %s\n",
              worst, worst < 0.02 ? "yes" : "NO");
  return 0;
}
