// Contention microbenchmark for the hit-path scaling ladder: multi-
// threaded Zipfian fetch/unpin throughput swept over thread count x batch
// capacity on the single-latch BufferPool (the per-shard microcosm —
// every hit serializes on one latch, so this isolates what each rung
// buys), plus 4-shard composition rows and the latch-free optimistic hit
// path (BufferPoolOptions::optimistic_hits). LRU-2 policy, hot set mostly
// resident, ~5% writes: the read-mostly regime batching and the
// optimistic path both target.
//
// Per-cell observability: alongside throughput and the AccessBuffer drain
// counters, every cell reports the pool's latch_acquires and
// pin_cas_retries as per-op rates — the direct evidence that the
// optimistic path removes the latch from warm hits (latch/op drops from
// ~2 to ~the drain rate) and what the speculative pin CAS costs under
// contention. A dedicated 8-thread "hot page" cell hammers ONE page —
// maximal latch contention for the latched pool, maximal pin-CAS traffic
// for the optimistic one.
//
// Shape checks:
//  * accounting — for every cell, hits + misses must equal the ops issued
//    exactly (neither batching nor the optimistic path may lose a fetch).
//  * throughput — at 8 threads, batch_capacity = 64 must reach >= 2x the
//    batch_capacity = 0 baseline on the single-latch pool; the optimistic
//    pool must reach >= 1x the latched batch-64 pool on the 1-thread
//    hot-page cell (all hits: the pure per-hit cost must win even with no
//    contention to remove) and >= 0.9x on the 1-thread Zipfian cell
//    (~30% of whose ops take the latched miss path either way), and >= 1x
//    at 8 threads on both workloads. Parallel contention is unobservable
//    without parallel hardware, so on machines with fewer than 4 cores
//    the multi-thread criteria are reported, not enforced (same
//    convention as micro_sharded_pool); the 1-thread criteria are always
//    enforced.
//  * composition — the "optimistic+ra" cell runs the optimistic pool with
//    the voting scan detector on (inline dispatcher): its 1-thread
//    Zipfian throughput must stay >= 0.9x the "optimistic+disp" cell —
//    the same dispatcher stack with the detector off, so the ratio
//    isolates what detection costs rather than pricing the dispatcher's
//    release-latch-across-read miss protocol
//    (detection must not tax the fast path; enforced in optimized builds
//    only — at -O0 the un-inlined voting loop dominates the access and
//    the ratio is meaningless), and the 1-thread hot-page optimistic
//    cell must show <= 0.1 latch acquires per op in every build (warm-hit
//    publishing is genuinely latch-free; the residue is batch drains).
//
// Flags: --json <path> writes machine-readable results (BENCH_*.json
// trajectory); --quick shrinks the per-cell op count for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr size_t kFrames = 512;
constexpr uint64_t kDbPages = 4096;
constexpr uint64_t kHotDbPages = 8;
constexpr double kWriteFraction = 0.05;
constexpr size_t kStripes = 8;

struct Cell {
  std::string pool;
  std::string mode = "latched";      // "latched" | "optimistic"
  std::string workload = "zipfian";  // "zipfian" | "hot_page"
  size_t shards = 1;
  int threads = 1;
  size_t batch_capacity = 0;
  double ops_per_sec = 0.0;
  double hit_ratio = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t ops_issued = 0;
  // I/O failure/retry counters from BufferPoolStats. SimDiskManager never
  // fails here, so all three must read zero — printing them keeps the
  // error-path accounting visible in the same artifact that tracks the
  // happy path (bench/fault_sweep.cc exercises the non-zero regime).
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  uint64_t retries = 0;
  // Optimistic hit-path counters (all zero in latched mode): how many
  // hits ran latch-free, how many speculative pins were rolled back, what
  // the pin CAS cost under contention, and — the headline — how often the
  // pool latch was taken at all. The fallback split attributes every
  // abandoned fast-path attempt to its cause (probe miss / version
  // conflict / displacement bound); access_drops counts buffered
  // references dropped at drain because their page was already evicted.
  uint64_t optimistic_hits = 0;
  uint64_t optimistic_fallbacks = 0;
  uint64_t fallback_probe_miss = 0;
  uint64_t fallback_version_conflict = 0;
  uint64_t fallback_resize = 0;
  uint64_t access_drops = 0;
  uint64_t pin_cas_retries = 0;
  uint64_t latch_acquires = 0;
  // AccessBuffer drain counters (all zero when batch_capacity == 0) — the
  // observability behind DESIGN.md's batch-capacity guidance: records per
  // drain shows whether batching amortizes anything or just adds the
  // enqueue hop.
  AccessBufferStats buffer_stats{};
};

double PerOp(uint64_t count, uint64_t ops) {
  return ops > 0 ? static_cast<double>(count) / static_cast<double>(ops) : 0;
}

// Multi-threaded fetch/unpin churn; every op must succeed (the pool is
// never pinned full), so ops issued is exact by construction. `Pool` is
// BufferPool or ShardedBufferPool (both expose access_buffer_stats(),
// which PoolInterface does not). The hot_page workload hammers pages[0]
// from every thread; zipfian samples the 80-20 skew.
template <typename Pool>
void RunCell(Pool& pool, Cell& cell, uint64_t total_ops, uint64_t db_pages) {
  std::vector<PageId> pages;
  pages.reserve(db_pages);
  for (uint64_t i = 0; i < db_pages; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   page.status().ToString().c_str());
      return;
    }
    pages.push_back((*page)->id());
    (void)pool.UnpinPage((*page)->id(), false);
  }
  pool.ResetStats();
  // Counters are lifetime totals; snapshot after setup so the reported
  // drain numbers cover only the measured churn.
  AccessBufferStats setup_stats = pool.access_buffer_stats();

  bool hot = cell.workload == "hot_page";
  RecursiveSkewDistribution dist(0.8, 0.2, db_pages);
  uint64_t ops_per_thread = total_ops / static_cast<uint64_t>(cell.threads);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(cell.threads));
  for (int t = 0; t < cell.threads; ++t) {
    workers.emplace_back([&, t] {
      RandomEngine rng(0xFACE + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId p = hot ? pages[0] : pages[dist.Sample(rng) - 1];
        bool write = !hot && rng.NextBernoulli(kWriteFraction);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (page.ok()) (void)pool.UnpinPage(p, false);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  BufferPoolStats stats = pool.stats();
  cell.ops_issued = ops_per_thread * static_cast<uint64_t>(cell.threads);
  cell.ops_per_sec =
      seconds > 0 ? static_cast<double>(cell.ops_issued) / seconds : 0;
  cell.hit_ratio = stats.HitRatio();
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.read_failures = stats.read_failures;
  cell.write_failures = stats.write_failures;
  cell.retries = stats.retries;
  cell.optimistic_hits = stats.optimistic_hits;
  cell.optimistic_fallbacks = stats.optimistic_fallbacks;
  cell.fallback_probe_miss = stats.fallback_probe_miss;
  cell.fallback_version_conflict = stats.fallback_version_conflict;
  cell.fallback_resize = stats.fallback_resize;
  cell.access_drops = stats.access_drops;
  cell.pin_cas_retries = stats.pin_cas_retries;
  cell.latch_acquires = stats.latch_acquires;
  AccessBufferStats end_stats = pool.access_buffer_stats();
  cell.buffer_stats.drains = end_stats.drains - setup_stats.drains;
  cell.buffer_stats.drained_records =
      end_stats.drained_records - setup_stats.drained_records;
  cell.buffer_stats.empty_drains =
      end_stats.empty_drains - setup_stats.empty_drains;
  cell.buffer_stats.full_pushes =
      end_stats.full_pushes - setup_stats.full_pushes;
}

double RecordsPerDrain(const AccessBufferStats& s) {
  return s.drains > 0
             ? static_cast<double>(s.drained_records) /
                   static_cast<double>(s.drains)
             : 0.0;
}

std::unique_ptr<ReplacementPolicy> MakeLru2(size_t capacity) {
  return std::make_unique<LruKPolicy>(
      LruKOptions{.k = 2, .capacity_hint = capacity});
}

BufferPoolOptions CellOptions(size_t batch, bool optimistic) {
  BufferPoolOptions options;
  options.batch_capacity = batch;
  options.batch_stripes = batch == 0 ? 1 : kStripes;
  options.optimistic_hits = optimistic;
  return options;
}

struct Checks {
  bool accounting_ok = true;
  double speedup_batch = 0.0;      // 8t, batch 64 vs batch 0, latched.
  double optimistic_1t = 0.0;      // 1t Zipfian, optimistic vs latched b64.
  double hot_page_1t = 0.0;        // 1t hot page, optimistic vs latched.
  double optimistic_8t = 0.0;      // 8t, optimistic vs latched batch 64.
  double hot_page_ratio = 0.0;     // 8t hot page, optimistic vs latched.
  double readahead_1t = 0.0;       // 1t Zipfian, +ra vs +disp (same stack).
  double publish_latch_1t = 0.0;   // 1t hot page optimistic, latch/op.
  bool enforced = false;           // cores >= 4: multi-thread checks bind.
  bool speedup_ok = false;
  bool optimistic_1t_ok = false;
  bool optimistic_8t_ok = false;
  bool hot_page_ok = false;
  bool floors_enforced = false;    // NDEBUG: the ratio floor binds.
  bool readahead_ok = false;       // Enforced in optimized builds.
  bool publish_latch_ok = false;   // Counter-based: always enforced.
};

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<Cell>& cells, unsigned cores, uint64_t ops,
               const Checks& checks) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_contention\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f,
               ",\n  \"cores\": %u,\n  \"frames\": %zu,\n"
               "  \"db_pages\": %llu,\n  \"ops_per_cell\": %llu,\n"
               "  \"cells\": [\n",
               cores, kFrames, static_cast<unsigned long long>(kDbPages),
               static_cast<unsigned long long>(ops));
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"pool\": \"%s\", \"mode\": \"%s\", \"workload\": \"%s\", "
        "\"shards\": %zu, \"threads\": %d, "
        "\"batch_capacity\": %zu, \"ops_per_sec\": %.1f, "
        "\"hit_ratio\": %.4f, \"hits\": %llu, \"misses\": %llu, "
        "\"drains\": %llu, \"drained_records\": %llu, "
        "\"empty_drains\": %llu, \"full_pushes\": %llu, "
        "\"records_per_drain\": %.1f, \"read_failures\": %llu, "
        "\"write_failures\": %llu, \"retries\": %llu, "
        "\"optimistic_hits\": %llu, \"optimistic_fallbacks\": %llu, "
        "\"fallback_probe_miss\": %llu, "
        "\"fallback_version_conflict\": %llu, \"fallback_resize\": %llu, "
        "\"access_drops\": %llu, "
        "\"pin_cas_retries\": %llu, \"latch_acquires\": %llu, "
        "\"latch_acquires_per_op\": %.4f, \"cas_retries_per_op\": %.4f}%s\n",
        c.pool.c_str(), c.mode.c_str(), c.workload.c_str(), c.shards,
        c.threads, c.batch_capacity, c.ops_per_sec, c.hit_ratio,
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.buffer_stats.drains),
        static_cast<unsigned long long>(c.buffer_stats.drained_records),
        static_cast<unsigned long long>(c.buffer_stats.empty_drains),
        static_cast<unsigned long long>(c.buffer_stats.full_pushes),
        RecordsPerDrain(c.buffer_stats),
        static_cast<unsigned long long>(c.read_failures),
        static_cast<unsigned long long>(c.write_failures),
        static_cast<unsigned long long>(c.retries),
        static_cast<unsigned long long>(c.optimistic_hits),
        static_cast<unsigned long long>(c.optimistic_fallbacks),
        static_cast<unsigned long long>(c.fallback_probe_miss),
        static_cast<unsigned long long>(c.fallback_version_conflict),
        static_cast<unsigned long long>(c.fallback_resize),
        static_cast<unsigned long long>(c.access_drops),
        static_cast<unsigned long long>(c.pin_cas_retries),
        static_cast<unsigned long long>(c.latch_acquires),
        PerOp(c.latch_acquires, c.ops_issued),
        PerOp(c.pin_cas_retries, c.ops_issued),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"accounting_exact\": %s,\n"
               "    \"speedup_8t_batch64_vs_batch0\": %.3f,\n"
               "    \"speedup_enforced\": %s,\n"
               "    \"speedup_ok\": %s,\n"
               "    \"optimistic_1t_vs_latched\": %.3f,\n"
               "    \"hot_page_1t_optimistic_vs_latched\": %.3f,\n"
               "    \"optimistic_1t_ok\": %s,\n"
               "    \"optimistic_8t_vs_latched\": %.3f,\n"
               "    \"optimistic_8t_ok\": %s,\n"
               "    \"hot_page_8t_optimistic_vs_latched\": %.3f,\n"
               "    \"hot_page_ok\": %s,\n"
               "    \"readahead_1t_vs_dispatcher\": %.3f,\n"
               "    \"readahead_floor_enforced\": %s,\n"
               "    \"readahead_1t_ok\": %s,\n"
               "    \"publish_latch_per_op_1t\": %.4f,\n"
               "    \"publish_latch_ok\": %s\n  }\n}\n",
               checks.accounting_ok ? "true" : "false", checks.speedup_batch,
               checks.enforced ? "true" : "false",
               checks.speedup_ok ? "true" : "false", checks.optimistic_1t,
               checks.hot_page_1t,
               checks.optimistic_1t_ok ? "true" : "false",
               checks.optimistic_8t,
               checks.optimistic_8t_ok ? "true" : "false",
               checks.hot_page_ratio,
               checks.hot_page_ok ? "true" : "false",
               checks.readahead_1t,
               checks.floors_enforced ? "true" : "false",
               checks.readahead_ok ? "true" : "false",
               checks.publish_latch_1t,
               checks.publish_latch_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint64_t total_ops = quick ? 60000 : 400000;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> batch_capacities = {0, 1, 8, 64};
  unsigned cores = std::thread::hardware_concurrency();
  provenance.threads = static_cast<unsigned>(thread_counts.back());

  std::printf(
      "Hit-path contention ladder: Zipfian 80-20 fetch/unpin (%llu pages, "
      "%zu frames, LRU-2, %.0f%% writes, %u cores)\n\n",
      static_cast<unsigned long long>(kDbPages), kFrames,
      kWriteFraction * 100, cores);

  std::vector<Cell> cells;
  AsciiTable table({"pool", "mode", "workload", "threads", "batch",
                    "ops/sec", "hit ratio", "latch/op", "cas/op",
                    "recs/drain"});
  auto add_row = [&](const Cell& cell) {
    table.AddRow({cell.pool, cell.mode, cell.workload,
                  AsciiTable::Integer(cell.threads),
                  AsciiTable::Integer(cell.batch_capacity),
                  AsciiTable::Integer(
                      static_cast<uint64_t>(cell.ops_per_sec)),
                  AsciiTable::Fixed(cell.hit_ratio, 3),
                  AsciiTable::Fixed(PerOp(cell.latch_acquires,
                                          cell.ops_issued), 3),
                  AsciiTable::Fixed(PerOp(cell.pin_cas_retries,
                                          cell.ops_issued), 4),
                  AsciiTable::Fixed(RecordsPerDrain(cell.buffer_stats), 1)});
    cells.push_back(cell);
  };

  Checks checks;
  // The always-enforced floors are 1-thread RATIO checks, and on a busy
  // shared host single-cell timings drift ±20% run-to-run — an order of
  // magnitude more than the few-percent effects being gated. Each such
  // pair is therefore measured back-to-back five times and judged on the
  // better of two estimators: the max per-repetition ratio (slow drift
  // hits both halves of a repetition roughly equally) and best-vs-best
  // across all repetitions (a burst that lands inside one repetition's
  // test half still leaves its other repetitions clean). Both cap at the
  // true ratio when the test mode carries a real systematic cost — that
  // cost is paid in every repetition, so no rep and no best escapes it —
  // while a noise dip has to hit all five repetitions to fail the floor.
  // The best repetition of each mode is the exported JSON cell.
  // Multi-thread cells stay single-run — their checks only bind on
  // >=4-core hosts, where contention noise dwarfs scheduler drift anyway.
  auto paired_ratio = [](auto&& run_base, auto&& run_test, Cell* best_base,
                         Cell* best_test) {
    double ratio = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      Cell base = run_base();
      Cell test = run_test();
      if (base.ops_per_sec > best_base->ops_per_sec) *best_base = base;
      if (test.ops_per_sec > best_test->ops_per_sec) *best_test = test;
      if (base.ops_per_sec > 0) {
        ratio = std::max(ratio, test.ops_per_sec / base.ops_per_sec);
      }
    }
    if (best_base->ops_per_sec > 0) {
      ratio = std::max(ratio,
                       best_test->ops_per_sec / best_base->ops_per_sec);
    }
    return ratio;
  };
  double baseline_8t = 0, batched64_8t = 0;
  double optimistic_1t_ratio = 0, optimistic_8t = 0;
  for (int threads : thread_counts) {
    auto run_latched = [&](size_t batch) {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;  // Measure the latch, not fake I/O.
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      BufferPool pool(kFrames, &disk, MakeLru2(kFrames),
                      CellOptions(batch, /*optimistic=*/false));
      Cell cell{.pool = "single-latch", .shards = 1, .threads = threads,
                .batch_capacity = batch};
      RunCell(pool, cell, total_ops, kDbPages);
      return cell;
    };
    // The optimistic rung at the same thread count (batch 64: the
    // latch-free hit publishes through the AccessBuffer, so this is the
    // apples-to-apples comparison against the latched batch-64 cell).
    auto run_optimistic = [&]() {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      BufferPool pool(kFrames, &disk, MakeLru2(kFrames),
                      CellOptions(64, /*optimistic=*/true));
      Cell cell{.pool = "single-latch", .mode = "optimistic", .shards = 1,
                .threads = threads, .batch_capacity = 64};
      RunCell(pool, cell, total_ops, kDbPages);
      return cell;
    };
    for (size_t batch : batch_capacities) {
      if (threads == 1 && batch == 64) continue;  // Paired below.
      Cell cell = run_latched(batch);
      if (threads == 8 && batch == 0) baseline_8t = cell.ops_per_sec;
      if (threads == 8 && batch == 64) batched64_8t = cell.ops_per_sec;
      add_row(cell);
    }
    if (threads == 1) {
      Cell best_latched{}, best_optimistic{};
      optimistic_1t_ratio =
          paired_ratio([&] { return run_latched(64); }, run_optimistic,
                       &best_latched, &best_optimistic);
      add_row(best_latched);
      add_row(best_optimistic);
    } else {
      Cell cell = run_optimistic();
      if (threads == 8) optimistic_8t = cell.ops_per_sec;
      add_row(cell);
    }
  }

  // Readahead composition: the same 1-thread Zipfian churn with the scan
  // detector enabled on top of the optimistic pool (inline dispatcher: no
  // worker threads). The baseline is the SAME dispatcher stack with the
  // detector off — the dispatcher's miss protocol drops and re-takes the
  // latch across every read (that is what lets concurrent misses coalesce),
  // so an optimistic-alone baseline would price that miss-path machinery,
  // not detection; against the matched stack the delta is exactly what the
  // always-on detector costs the fast path. Observe is wait-free, so warm
  // hits must stay latch-free, and a Zipfian stream almost never musters
  // min_run aligned votes, so this prices the detector probe, not actual
  // prefetch traffic.
  // Judged on the max per-repetition ratio like the other enforced
  // 1-thread floors (see paired_ratio above).
  double readahead_ratio = 0;
  {
    auto run_detector = [&](bool detector) {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      BufferPoolOptions options = CellOptions(64, /*optimistic=*/true);
      options.io_dispatcher = true;
      options.io_workers = 0;  // Inline: prefetches run on the fetch
                               // thread.
      options.readahead.enabled = detector;
      BufferPool pool(kFrames, &disk, MakeLru2(kFrames), options);
      Cell cell{.pool = "single-latch",
                .mode = detector ? "optimistic+ra" : "optimistic+disp",
                .shards = 1, .threads = 1, .batch_capacity = 64};
      RunCell(pool, cell, total_ops, kDbPages);
      return cell;
    };
    Cell best_disp{}, best_ra{};
    readahead_ratio =
        paired_ratio([&] { return run_detector(false); },
                     [&] { return run_detector(true); }, &best_disp,
                     &best_ra);
    add_row(best_disp);
    add_row(best_ra);
  }

  // Composition rows: the same knobs through ShardedBufferPool.
  for (bool optimistic : {false, true}) {
    for (size_t batch : {size_t{0}, size_t{64}}) {
      if (optimistic && batch == 0) continue;  // Implies batching anyway.
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
      if (!factory.ok()) {
        std::fprintf(stderr, "factory: %s\n",
                     factory.status().ToString().c_str());
        return 1;
      }
      ShardedBufferPool pool(kFrames, /*num_shards=*/4, &disk, *factory,
                             CellOptions(batch, optimistic));
      Cell cell{.pool = "sharded x4",
                .mode = optimistic ? "optimistic" : "latched", .shards = 4,
                .threads = 8, .batch_capacity = batch};
      RunCell(pool, cell, total_ops, kDbPages);
      add_row(cell);
    }
  }

  // The hot-page cells: every thread hammers ONE page. At 8 threads the
  // latch (or the pin CAS) is the entire workload; at 1 thread this is
  // the pure per-hit cost with no misses and no contention — the cleanest
  // single-thread comparison of the two hit paths.
  double hot_latched = 0, hot_optimistic = 0;
  double hot1_ratio = 0;
  double hot1_latch_per_op = 0;
  for (int threads : {1, 8}) {
    auto run_hot = [&](bool optimistic) {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      BufferPool pool(kFrames, &disk, MakeLru2(kFrames),
                      CellOptions(64, optimistic));
      Cell cell{.pool = "single-latch",
                .mode = optimistic ? "optimistic" : "latched",
                .workload = "hot_page", .shards = 1, .threads = threads,
                .batch_capacity = 64};
      RunCell(pool, cell, total_ops, kHotDbPages);
      return cell;
    };
    if (threads == 1) {
      // Feeds the always-enforced hot_page_1t >= 1.0 floor: judged on
      // the max per-repetition ratio (see paired_ratio above).
      Cell best_latched{}, best_optimistic{};
      hot1_ratio = paired_ratio([&] { return run_hot(false); },
                                [&] { return run_hot(true); },
                                &best_latched, &best_optimistic);
      hot1_latch_per_op =
          PerOp(best_optimistic.latch_acquires, best_optimistic.ops_issued);
      add_row(best_latched);
      add_row(best_optimistic);
    } else {
      for (bool optimistic : {false, true}) {
        Cell cell = run_hot(optimistic);
        (optimistic ? hot_optimistic : hot_latched) = cell.ops_per_sec;
        add_row(cell);
      }
    }
  }
  table.Print();

  checks.accounting_ok = true;
  for (const Cell& c : cells) {
    if (c.hits + c.misses != c.ops_issued) {
      checks.accounting_ok = false;
      std::printf("accounting mismatch: %s %s t=%d b=%zu: "
                  "%llu + %llu != %llu\n",
                  c.pool.c_str(), c.mode.c_str(), c.threads,
                  c.batch_capacity, static_cast<unsigned long long>(c.hits),
                  static_cast<unsigned long long>(c.misses),
                  static_cast<unsigned long long>(c.ops_issued));
    }
  }

  uint64_t total_read_failures = 0, total_write_failures = 0,
           total_retries = 0;
  for (const Cell& c : cells) {
    total_read_failures += c.read_failures;
    total_write_failures += c.write_failures;
    total_retries += c.retries;
  }
  std::printf("\nio error accounting (expect all zero on SimDisk): "
              "read_failures=%llu write_failures=%llu retries=%llu\n",
              static_cast<unsigned long long>(total_read_failures),
              static_cast<unsigned long long>(total_write_failures),
              static_cast<unsigned long long>(total_retries));

  checks.speedup_batch = baseline_8t > 0 ? batched64_8t / baseline_8t : 0.0;
  checks.optimistic_1t = optimistic_1t_ratio;
  checks.hot_page_1t = hot1_ratio;
  checks.optimistic_8t =
      batched64_8t > 0 ? optimistic_8t / batched64_8t : 0.0;
  checks.hot_page_ratio =
      hot_latched > 0 ? hot_optimistic / hot_latched : 0.0;
  checks.readahead_1t = readahead_ratio;
  checks.publish_latch_1t = hot1_latch_per_op;
  std::printf("\nspeedup (8 threads, batch 64 vs batch 0, single latch): "
              "%.2fx\n", checks.speedup_batch);
  std::printf("optimistic vs latched batch-64 (single latch, 1t ratios "
              "paired best-of-5): 1t zipfian %.2fx, 1t hot page %.2fx, "
              "8t %.2fx, 8t hot page %.2fx\n",
              checks.optimistic_1t, checks.hot_page_1t,
              checks.optimistic_8t, checks.hot_page_ratio);
  std::printf("optimistic+readahead vs same stack, detector off "
              "(1t zipfian, paired best-of-5): "
              "%.2fx; 1t hot-page publish path: %.4f latch/op\n",
              checks.readahead_1t, checks.publish_latch_1t);
  checks.enforced = cores >= 4;
  checks.speedup_ok = checks.speedup_batch >= 2.0;
  // The latch-free hit must win single-threaded where hits are the whole
  // workload (hot page: no contention to win, pure per-hit cost — the
  // uncontended mutex pair still loses to the probe + pin CAS), and must
  // stay within noise of latched on the miss-diluted Zipfian cell (~30%
  // of its ops take the latched miss path either way).
  checks.optimistic_1t_ok =
      checks.hot_page_1t >= 1.0 && checks.optimistic_1t >= 0.9;
  // ...and must win (or at least not lose) once threads actually contend.
  checks.optimistic_8t_ok = checks.optimistic_8t >= 1.0;
  checks.hot_page_ok = checks.hot_page_ratio >= 1.0;
  // Composition floors (both single-threaded, so core-count independent):
  // warm-hit publishing must keep the latch essentially off the hot path
  // (drains amortize across the batch; 0.1/op is 6x the batch-64 drain
  // rate, generous headroom over noise) — counter-based, so it binds in
  // every build. The detector-tax ratio is a timing ratio that is only
  // meaningful where Observe's voting loop gets inlined: at -O0 the
  // un-inlined loop is ~35% of the whole access (measured 0.65x) while
  // optimized builds keep it under 10% (1.0-1.05x), so the >= 0.9 floor
  // binds only under NDEBUG and is report-only otherwise. CI's default
  // build resolves to Release (CMakeLists falls back when the type is
  // unset), so both CI bench jobs enforce it.
#ifdef NDEBUG
  checks.floors_enforced = true;
#endif
  checks.readahead_ok =
      checks.readahead_1t >= 0.9 || !checks.floors_enforced;
  checks.publish_latch_ok = checks.publish_latch_1t <= 0.1;
  if (!checks.floors_enforced) {
    std::printf("note: unoptimized build — reporting the "
                "optimistic+readahead ratio without enforcement\n");
  }
  if (!checks.enforced) {
    std::printf("note: only %u hardware threads — latch contention needs "
                ">=4 cores, reporting multi-thread criteria without "
                "enforcement\n", cores);
    checks.speedup_ok = true;
    checks.optimistic_8t_ok = true;
    checks.hot_page_ok = true;
  }
  std::printf("shape: hit+miss totals exactly equal ops in every cell: %s\n",
              checks.accounting_ok ? "yes" : "NO");
  std::printf("shape: 8-thread batch-64 throughput >= 2x batch-0 "
              "(or <4 cores): %s\n", checks.speedup_ok ? "yes" : "NO");
  std::printf("shape: optimistic >= 1x latched on the 1-thread hot page "
              "and >= 0.9x on 1-thread zipfian: %s\n",
              checks.optimistic_1t_ok ? "yes" : "NO");
  std::printf("shape: optimistic >= 1x latched batch-64 at 8 threads "
              "(or <4 cores): %s\n",
              checks.optimistic_8t_ok ? "yes" : "NO");
  std::printf("shape: optimistic >= 1x latched on the 8-thread hot page "
              "(or <4 cores): %s\n", checks.hot_page_ok ? "yes" : "NO");
  std::printf("shape: optimistic+readahead >= 0.9x the detector-off stack "
              "at 1 thread (or unoptimized build): %s\n",
              checks.readahead_ok ? "yes" : "NO");
  std::printf("shape: 1-thread hot-page optimistic <= 0.1 latch/op: %s\n",
              checks.publish_latch_ok ? "yes" : "NO");

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, cells, cores, total_ops, checks);
    std::printf("wrote %s\n", json_path);
  }
  return checks.accounting_ok && checks.speedup_ok &&
                 checks.optimistic_1t_ok && checks.optimistic_8t_ok &&
                 checks.hot_page_ok && checks.readahead_ok &&
                 checks.publish_latch_ok
             ? 0
             : 1;
}
