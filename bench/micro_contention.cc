// Contention microbenchmark for batched access recording: multi-threaded
// Zipfian fetch/unpin throughput swept over thread count x batch capacity,
// on the single-latch BufferPool (the per-shard microcosm — every hit
// serializes on one latch, so this isolates what batching buys), plus a
// 4-shard composition row. LRU-2 policy, hot set mostly resident, ~5%
// writes: the read-mostly regime the batching targets, where the victim
// index reposition on every hit is the dominant latch hold.
//
// Shape checks:
//  * accounting — for every cell, hits + misses must equal the ops issued
//    exactly (batching defers HIST updates, never hit/miss counting).
//  * throughput — at 8 threads, batch_capacity = 64 must reach >= 2x the
//    batch_capacity = 0 baseline on the single-latch pool. Parallel
//    contention is unobservable without parallel hardware, so on machines
//    with fewer than 4 cores the criterion is reported, not enforced
//    (same convention as micro_sharded_pool).
//
// Flags: --json <path> writes machine-readable results (BENCH_*.json
// trajectory); --quick shrinks the per-cell op count for CI smoke runs.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr size_t kFrames = 512;
constexpr uint64_t kDbPages = 4096;
constexpr double kWriteFraction = 0.05;
constexpr size_t kStripes = 8;

struct Cell {
  std::string pool;
  size_t shards = 1;
  int threads = 1;
  size_t batch_capacity = 0;
  double ops_per_sec = 0.0;
  double hit_ratio = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t ops_issued = 0;
  // I/O failure/retry counters from BufferPoolStats. SimDiskManager never
  // fails here, so all three must read zero — printing them keeps the
  // error-path accounting visible in the same artifact that tracks the
  // happy path (bench/fault_sweep.cc exercises the non-zero regime).
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  uint64_t retries = 0;
  // AccessBuffer drain counters (all zero when batch_capacity == 0) — the
  // observability behind DESIGN.md's batch-capacity guidance: records per
  // drain shows whether batching amortizes anything or just adds the
  // enqueue hop.
  AccessBufferStats buffer_stats;
};

// Zipfian fetch/unpin churn; every op must succeed (the pool is never
// pinned full), so ops issued is exact by construction. `Pool` is
// BufferPool or ShardedBufferPool (both expose access_buffer_stats(),
// which PoolInterface does not).
template <typename Pool>
void RunCell(Pool& pool, Cell& cell, uint64_t total_ops) {
  std::vector<PageId> pages;
  pages.reserve(kDbPages);
  for (uint64_t i = 0; i < kDbPages; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   page.status().ToString().c_str());
      return;
    }
    pages.push_back((*page)->id());
    (void)pool.UnpinPage((*page)->id(), false);
  }
  pool.ResetStats();
  // Counters are lifetime totals; snapshot after setup so the reported
  // drain numbers cover only the measured churn.
  AccessBufferStats setup_stats = pool.access_buffer_stats();

  RecursiveSkewDistribution dist(0.8, 0.2, kDbPages);
  uint64_t ops_per_thread = total_ops / static_cast<uint64_t>(cell.threads);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(cell.threads));
  for (int t = 0; t < cell.threads; ++t) {
    workers.emplace_back([&, t] {
      RandomEngine rng(0xFACE + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(kWriteFraction);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (page.ok()) (void)pool.UnpinPage(p, false);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  BufferPoolStats stats = pool.stats();
  cell.ops_issued = ops_per_thread * static_cast<uint64_t>(cell.threads);
  cell.ops_per_sec =
      seconds > 0 ? static_cast<double>(cell.ops_issued) / seconds : 0;
  cell.hit_ratio = stats.HitRatio();
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.read_failures = stats.read_failures;
  cell.write_failures = stats.write_failures;
  cell.retries = stats.retries;
  AccessBufferStats end_stats = pool.access_buffer_stats();
  cell.buffer_stats.drains = end_stats.drains - setup_stats.drains;
  cell.buffer_stats.drained_records =
      end_stats.drained_records - setup_stats.drained_records;
  cell.buffer_stats.empty_drains =
      end_stats.empty_drains - setup_stats.empty_drains;
  cell.buffer_stats.full_pushes =
      end_stats.full_pushes - setup_stats.full_pushes;
}

double RecordsPerDrain(const AccessBufferStats& s) {
  return s.drains > 0
             ? static_cast<double>(s.drained_records) /
                   static_cast<double>(s.drains)
             : 0.0;
}

std::unique_ptr<ReplacementPolicy> MakeLru2(size_t capacity) {
  return std::make_unique<LruKPolicy>(
      LruKOptions{.k = 2, .capacity_hint = capacity});
}

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<Cell>& cells, unsigned cores, uint64_t ops,
               bool accounting_ok, double speedup, bool enforced,
               bool speedup_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_contention\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f,
               ",\n  \"cores\": %u,\n  \"frames\": %zu,\n"
               "  \"db_pages\": %llu,\n  \"ops_per_cell\": %llu,\n"
               "  \"cells\": [\n",
               cores, kFrames, static_cast<unsigned long long>(kDbPages),
               static_cast<unsigned long long>(ops));
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"pool\": \"%s\", \"shards\": %zu, \"threads\": %d, "
        "\"batch_capacity\": %zu, \"ops_per_sec\": %.1f, "
        "\"hit_ratio\": %.4f, \"hits\": %llu, \"misses\": %llu, "
        "\"drains\": %llu, \"drained_records\": %llu, "
        "\"empty_drains\": %llu, \"full_pushes\": %llu, "
        "\"records_per_drain\": %.1f, \"read_failures\": %llu, "
        "\"write_failures\": %llu, \"retries\": %llu}%s\n",
        c.pool.c_str(), c.shards, c.threads, c.batch_capacity, c.ops_per_sec,
        c.hit_ratio, static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.buffer_stats.drains),
        static_cast<unsigned long long>(c.buffer_stats.drained_records),
        static_cast<unsigned long long>(c.buffer_stats.empty_drains),
        static_cast<unsigned long long>(c.buffer_stats.full_pushes),
        RecordsPerDrain(c.buffer_stats),
        static_cast<unsigned long long>(c.read_failures),
        static_cast<unsigned long long>(c.write_failures),
        static_cast<unsigned long long>(c.retries),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"accounting_exact\": %s,\n"
               "    \"speedup_8t_batch64_vs_batch0\": %.3f,\n"
               "    \"speedup_enforced\": %s,\n"
               "    \"speedup_ok\": %s\n  }\n}\n",
               accounting_ok ? "true" : "false", speedup,
               enforced ? "true" : "false", speedup_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint64_t total_ops = quick ? 60000 : 400000;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> batch_capacities = {0, 1, 8, 64};
  unsigned cores = std::thread::hardware_concurrency();

  std::printf(
      "Batched access recording: Zipfian 80-20 fetch/unpin (%llu pages, "
      "%zu frames, LRU-2, %.0f%% writes, %u cores)\n\n",
      static_cast<unsigned long long>(kDbPages), kFrames,
      kWriteFraction * 100, cores);

  std::vector<Cell> cells;
  AsciiTable table({"pool", "threads", "batch", "ops/sec", "hit ratio",
                    "drains", "recs/drain", "full pushes"});

  double baseline_8t = 0, batched64_8t = 0;
  for (int threads : thread_counts) {
    for (size_t batch : batch_capacities) {
      SimDiskOptions disk_options;
      disk_options.read_micros = 0.0;  // Measure the latch, not fake I/O.
      disk_options.write_micros = 0.0;
      SimDiskManager disk(disk_options);
      BufferPool pool(
          kFrames, &disk, MakeLru2(kFrames),
          BufferPoolOptions{.batch_capacity = batch,
                            .batch_stripes = batch == 0 ? 1 : kStripes});
      Cell cell{.pool = "single-latch", .shards = 1, .threads = threads,
                .batch_capacity = batch};
      RunCell(pool, cell, total_ops);
      if (threads == 8 && batch == 0) baseline_8t = cell.ops_per_sec;
      if (threads == 8 && batch == 64) batched64_8t = cell.ops_per_sec;
      table.AddRow({cell.pool, AsciiTable::Integer(threads),
                    AsciiTable::Integer(batch),
                    AsciiTable::Integer(
                        static_cast<uint64_t>(cell.ops_per_sec)),
                    AsciiTable::Fixed(cell.hit_ratio, 3),
                    AsciiTable::Integer(cell.buffer_stats.drains),
                    AsciiTable::Fixed(RecordsPerDrain(cell.buffer_stats), 1),
                    AsciiTable::Integer(cell.buffer_stats.full_pushes)});
      cells.push_back(cell);
    }
  }

  // Composition row: the same knob through ShardedBufferPool.
  for (size_t batch : {size_t{0}, size_t{64}}) {
    SimDiskOptions disk_options;
    disk_options.read_micros = 0.0;
    disk_options.write_micros = 0.0;
    SimDiskManager disk(disk_options);
    auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
    if (!factory.ok()) {
      std::fprintf(stderr, "factory: %s\n",
                   factory.status().ToString().c_str());
      return 1;
    }
    ShardedBufferPool pool(
        kFrames, /*num_shards=*/4, &disk, *factory,
        BufferPoolOptions{.batch_capacity = batch,
                          .batch_stripes = batch == 0 ? 1 : kStripes});
    Cell cell{.pool = "sharded x4", .shards = 4, .threads = 8,
              .batch_capacity = batch};
    RunCell(pool, cell, total_ops);
    table.AddRow({cell.pool, AsciiTable::Integer(8),
                  AsciiTable::Integer(batch),
                  AsciiTable::Integer(
                      static_cast<uint64_t>(cell.ops_per_sec)),
                  AsciiTable::Fixed(cell.hit_ratio, 3),
                  AsciiTable::Integer(cell.buffer_stats.drains),
                  AsciiTable::Fixed(RecordsPerDrain(cell.buffer_stats), 1),
                  AsciiTable::Integer(cell.buffer_stats.full_pushes)});
    cells.push_back(cell);
  }
  table.Print();

  bool accounting_ok = true;
  for (const Cell& c : cells) {
    if (c.hits + c.misses != c.ops_issued) {
      accounting_ok = false;
      std::printf("accounting mismatch: %s t=%d b=%zu: %llu + %llu != %llu\n",
                  c.pool.c_str(), c.threads, c.batch_capacity,
                  static_cast<unsigned long long>(c.hits),
                  static_cast<unsigned long long>(c.misses),
                  static_cast<unsigned long long>(c.ops_issued));
    }
  }

  uint64_t total_read_failures = 0, total_write_failures = 0,
           total_retries = 0;
  for (const Cell& c : cells) {
    total_read_failures += c.read_failures;
    total_write_failures += c.write_failures;
    total_retries += c.retries;
  }
  std::printf("\nio error accounting (expect all zero on SimDisk): "
              "read_failures=%llu write_failures=%llu retries=%llu\n",
              static_cast<unsigned long long>(total_read_failures),
              static_cast<unsigned long long>(total_write_failures),
              static_cast<unsigned long long>(total_retries));

  double speedup = baseline_8t > 0 ? batched64_8t / baseline_8t : 0.0;
  std::printf("\nspeedup (8 threads, batch 64 vs batch 0, single latch): "
              "%.2fx\n",
              speedup);
  bool enforced = cores >= 4;
  bool speedup_ok = speedup >= 2.0;
  if (!enforced) {
    std::printf("note: only %u hardware threads — latch contention needs "
                ">=4 cores, reporting without enforcement\n",
                cores);
    speedup_ok = true;
  }
  std::printf("shape: hit+miss totals exactly equal ops in every cell: %s\n",
              accounting_ok ? "yes" : "NO");
  std::printf("shape: 8-thread batch-64 throughput >= 2x batch-0 "
              "(or <4 cores): %s\n",
              speedup_ok ? "yes" : "NO");

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, cells, cores, total_ops, accounting_ok,
              speedup, enforced, speedup_ok);
    std::printf("wrote %s\n", json_path);
  }
  return accounting_ok && speedup_ok ? 0 : 1;
}
