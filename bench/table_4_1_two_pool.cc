// Reproduces Table 4.1 of the paper: the two-pool experiment with
// N1 = 100, N2 = 10,000 — alternating references to a hot pool (index
// pages) and a cold pool (record pages), hit ratios for LRU-1/2/3 and the
// A0 probability oracle, plus the equi-effective buffer ratio B(1)/B(2).
//
// Methodology follows Section 4.1 (warmup 10*N1 references before
// measuring) except that we measure 300*N1 references instead of the
// paper's 30*N1: the policies are deterministic given the stream, and the
// longer window only tightens the estimate of the same stationary hit
// ratio (30*N1 = 3,000 samples has +-0.01 binomial noise, which matters
// when comparing against A0 at three decimals).

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/equi_effective.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  topt.seed = 19931;
  TwoPoolWorkload gen(topt);

  const std::vector<size_t> capacities = {60,  80,  100, 120, 140, 160, 180,
                                          200, 250, 300, 350, 400, 450};
  // Paper reference values, aligned with `capacities`.
  const double paper_lru1[] = {0.14, 0.18, 0.22, 0.26, 0.29, 0.32, 0.34,
                               0.37, 0.42, 0.45, 0.48, 0.49, 0.50};
  const double paper_lru2[] = {0.291, 0.382, 0.459, 0.496, 0.502, 0.503,
                               0.504, 0.505, 0.508, 0.510, 0.513, 0.515,
                               0.517};
  const double paper_ratio[] = {2.3, 2.6, 3.0, 3.3, 3.2, 2.8, 2.5,
                                2.3, 2.2, 2.0, 1.9, 1.9, 1.8};

  SweepSpec spec;
  spec.capacities = capacities;
  spec.policies = {PolicyConfig::Lru(), PolicyConfig::LruK(2),
                   PolicyConfig::LruK(3), PolicyConfig::A0()};
  spec.sim.warmup_refs = 10 * topt.n1;
  spec.sim.measure_refs = 1000 * topt.n1;
  spec.sim.track_classes = false;

  std::printf("Table 4.1 reproduction: two-pool experiment, N1=%llu "
              "N2=%llu\n",
              static_cast<unsigned long long>(topt.n1),
              static_cast<unsigned long long>(topt.n2));
  std::printf("(paper values in parentheses; B(1)/B(2) from the measured "
              "LRU-1 curve)\n\n");

  auto sweep = RunSweep(spec, gen);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }

  // Dense LRU-1 curve out to 3.5x the largest B for the B(1) inversion.
  std::vector<size_t> curve_caps;
  for (size_t b = 40; b <= 1600; b += 20) curve_caps.push_back(b);
  SweepSpec curve_spec;
  curve_spec.capacities = curve_caps;
  curve_spec.policies = {PolicyConfig::Lru()};
  curve_spec.sim = spec.sim;
  auto curve = RunSweep(curve_spec, gen);
  if (!curve.ok()) {
    std::fprintf(stderr, "curve sweep failed: %s\n",
                 curve.status().ToString().c_str());
    return 1;
  }
  std::vector<double> curve_ratios;
  curve_ratios.reserve(curve_caps.size());
  for (size_t i = 0; i < curve_caps.size(); ++i) {
    curve_ratios.push_back(curve->HitRatio(i, 0));
  }

  AsciiTable table({"B", "LRU-1", "(paper)", "LRU-2", "(paper)", "LRU-3",
                    "A0", "B(1)/B(2)", "(paper)"});
  for (size_t i = 0; i < capacities.size(); ++i) {
    double lru2_ratio = sweep->HitRatio(i, 1);
    auto b1 = InterpolateCapacityForHitRatio(curve_caps, curve_ratios,
                                             lru2_ratio);
    double ratio = b1 ? *b1 / static_cast<double>(capacities[i]) : 0.0;
    table.AddRow({AsciiTable::Integer(capacities[i]),
                  AsciiTable::Fixed(sweep->HitRatio(i, 0), 3),
                  AsciiTable::Fixed(paper_lru1[i], 2),
                  AsciiTable::Fixed(lru2_ratio, 3),
                  AsciiTable::Fixed(paper_lru2[i], 3),
                  AsciiTable::Fixed(sweep->HitRatio(i, 2), 3),
                  AsciiTable::Fixed(sweep->HitRatio(i, 3), 3),
                  b1 ? AsciiTable::Fixed(ratio, 1) : ">max",
                  AsciiTable::Fixed(paper_ratio[i], 1)});
  }
  table.Print();
  table.MaybeWriteCsvFromEnv("table_4_1");

  // Qualitative shape checks mirroring the paper's reading of the table.
  bool lru2_dominates = true;
  bool lru3_approaches_a0 = true;
  for (size_t i = 0; i < capacities.size(); ++i) {
    if (sweep->HitRatio(i, 1) <= sweep->HitRatio(i, 0)) {
      lru2_dominates = false;
    }
    double d3 = std::abs(sweep->HitRatio(i, 3) - sweep->HitRatio(i, 2));
    double d2 = std::abs(sweep->HitRatio(i, 3) - sweep->HitRatio(i, 1));
    if (d3 > d2 + 0.003) {
      lru3_approaches_a0 = false;
    }
  }
  std::printf("\nshape: LRU-2 > LRU-1 at every B: %s\n",
              lru2_dominates ? "yes" : "NO");
  std::printf("shape: LRU-3 at least as close to A0 as LRU-2: %s\n",
              lru3_approaches_a0 ? "yes" : "NO");
  return 0;
}
