// Bookkeeping-overhead microbenchmark (the paper's claim that LRU-K "is
// fairly simple and incurs little bookkeeping overhead"). Two parts:
//
//  1. Catalog sweep — nanoseconds per reference (the full hit-or-admit-
//     with-eviction step at a fixed buffer size) for every policy in the
//     catalog, on the Zipfian 80-20 stream. An 8.5 ms 1993 disk read is
//     ~10^5 of these steps, so sub-microsecond numbers substantiate the
//     claim.
//
//  2. Victim-index grid — LRU-2 under each victim-search structure
//     (lazy_heap / ordered_set / linear; see DESIGN.md "Victim index
//     structures") at two resident-set sizes, on a 95%-hot / 5%-cold
//     stream: mostly hits (where the lazy heap does nothing and the
//     ordered set pays a tree reposition) with enough cold misses to keep
//     evictions honest. Before timing, the three modes are driven over one
//     shared trace and their Evict() sequences compared element-wise — the
//     speedup only counts if the structures are behaviourally identical.
//
// Shape checks:
//  * victim sequences identical across the three index modes, both sizes;
//  * lazy_heap >= 1.5x ordered_set referenced-ops throughput at every
//    resident size (the PR 3 acceptance bar).
//
// Flags: --json <path>, --quick, and the provenance flags of
// bench_common.h (--git-sha/--build-type/--sanitizer, stamped into the
// JSON by run_quick.sh).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "util/random.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

constexpr size_t kCatalogCapacity = 1024;

// One hit-or-admit reference step; the unit both parts measure.
inline void Step(ReplacementPolicy& p, PageId page, size_t capacity) {
  if (p.IsResident(page)) {
    p.RecordAccess(page, AccessType::kRead);
  } else {
    if (p.ResidentCount() == capacity) (void)p.Evict();
    p.Admit(page, AccessType::kRead);
  }
}

// --- Part 1: catalog sweep -------------------------------------------------

std::vector<PageId> ZipfTrace(size_t length) {
  ZipfianOptions zopt;
  zopt.num_pages = 16384;
  zopt.seed = 77;
  ZipfianWorkload gen(zopt);
  return MaterializeTrace(gen, length);
}

struct CatalogRow {
  std::string name;
  double ns_per_ref = 0.0;
};

CatalogRow RunCatalog(const std::string& label, const PolicyConfig& config,
                      const std::vector<PageId>& trace, uint64_t ops) {
  PolicyContext context;
  context.capacity = kCatalogCapacity;
  auto policy = MakePolicy(config, context);
  LRUK_ASSERT(policy.ok(), "catalog policy failed to build");
  ReplacementPolicy& p = **policy;

  // One full pass to warm the resident set, then the timed loop.
  for (PageId page : trace) Step(p, page, kCatalogCapacity);
  size_t i = 0;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t n = 0; n < ops; ++n) {
    Step(p, trace[i], kCatalogCapacity);
    if (++i == trace.size()) i = 0;
  }
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return CatalogRow{label, seconds * 1e9 / static_cast<double>(ops)};
}

// --- Part 2: victim-index grid ---------------------------------------------

const char* IndexName(VictimIndex index) {
  switch (index) {
    case VictimIndex::kLazyHeap: return "lazy_heap";
    case VictimIndex::kOrderedSet: return "ordered_set";
    case VictimIndex::kLinear: return "linear";
  }
  return "?";
}

// 95% uniform over a hot set that fits in the buffer, 5% uniform over a
// 10x-capacity cold range: a high hit rate (the regime the lazy heap
// optimizes) with a steady eviction trickle (so PickVictim is exercised).
std::vector<PageId> IndexTrace(size_t resident, size_t length,
                               uint64_t seed) {
  std::vector<PageId> trace;
  trace.reserve(length);
  RandomEngine rng(seed);
  uint64_t hot = resident * 3 / 4;
  uint64_t cold = resident * 10;
  for (size_t i = 0; i < length; ++i) {
    if (rng.NextBernoulli(0.95)) {
      trace.push_back(1 + rng.NextBounded(hot));
    } else {
      trace.push_back(1 + hot + rng.NextBounded(cold));
    }
  }
  return trace;
}

LruKPolicy MakeLru2(VictimIndex index, size_t resident) {
  return LruKPolicy(LruKOptions{
      .k = 2, .capacity_hint = resident, .victim_index = index});
}

struct IndexCell {
  VictimIndex index;
  size_t resident = 0;
  double ops_per_sec = 0.0;
  double ns_per_ref = 0.0;
};

IndexCell RunIndexCell(VictimIndex index, size_t resident,
                       const std::vector<PageId>& trace, uint64_t ops) {
  LruKPolicy p = MakeLru2(index, resident);
  for (PageId page : trace) Step(p, page, resident);
  size_t i = 0;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t n = 0; n < ops; ++n) {
    Step(p, trace[i], resident);
    if (++i == trace.size()) i = 0;
  }
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  IndexCell cell{index, resident};
  cell.ops_per_sec =
      seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
  cell.ns_per_ref = seconds * 1e9 / static_cast<double>(ops);
  return cell;
}

// Replays `trace` and returns every Evict() result in order. The three
// index structures must produce byte-identical sequences (the lazy heap's
// staleness is an implementation detail, never a behaviour change).
std::vector<PageId> VictimSequence(VictimIndex index, size_t resident,
                                   const std::vector<PageId>& trace) {
  LruKPolicy p = MakeLru2(index, resident);
  std::vector<PageId> victims;
  for (PageId page : trace) {
    if (p.IsResident(page)) {
      p.RecordAccess(page, AccessType::kRead);
    } else {
      if (p.ResidentCount() == resident) {
        auto victim = p.Evict();
        LRUK_ASSERT(victim.has_value(), "full pool failed to evict");
        victims.push_back(*victim);
      }
      p.Admit(page, AccessType::kRead);
    }
  }
  return victims;
}

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<CatalogRow>& catalog,
               const std::vector<IndexCell>& cells,
               bool sequences_ok, const std::vector<double>& speedups,
               bool speedup_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_policy_overhead\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f, ",\n  \"catalog_capacity\": %zu,\n  \"catalog\": [\n",
               kCatalogCapacity);
  for (size_t i = 0; i < catalog.size(); ++i) {
    std::fprintf(f, "    {\"policy\": \"%s\", \"ns_per_ref\": %.1f}%s\n",
                 catalog[i].name.c_str(), catalog[i].ns_per_ref,
                 i + 1 < catalog.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"index_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const IndexCell& c = cells[i];
    std::fprintf(f,
                 "    {\"victim_index\": \"%s\", \"resident\": %zu, "
                 "\"ops_per_sec\": %.1f, \"ns_per_ref\": %.1f}%s\n",
                 IndexName(c.index), c.resident, c.ops_per_sec, c.ns_per_ref,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"victim_sequences_identical\": %s,\n",
               sequences_ok ? "true" : "false");
  std::fprintf(f, "    \"lazy_vs_ordered_speedups\": [");
  for (size_t i = 0; i < speedups.size(); ++i) {
    std::fprintf(f, "%s%.3f", i > 0 ? ", " : "", speedups[i]);
  }
  std::fprintf(f, "],\n    \"speedup_ok\": %s\n  }\n}\n",
               speedup_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint64_t catalog_ops = quick ? 1 << 16 : 1 << 20;
  const uint64_t index_ops = quick ? 1 << 17 : 1 << 21;
  const size_t diff_len = quick ? 1 << 16 : 1 << 18;
  const std::vector<size_t> resident_sizes = {512, 2048};
  const std::vector<VictimIndex> modes = {
      VictimIndex::kLazyHeap, VictimIndex::kOrderedSet, VictimIndex::kLinear};

  // --- Catalog sweep ---
  std::printf(
      "Policy bookkeeping overhead: Zipfian 80-20, %zu frames, "
      "hit-or-admit step\n\n",
      kCatalogCapacity);
  std::vector<PageId> zipf = ZipfTrace(1 << 16);
  std::vector<CatalogRow> catalog;
  PolicyConfig lru2_ordered = PolicyConfig::LruK(2);
  lru2_ordered.lru_k.victim_index = VictimIndex::kOrderedSet;
  PolicyConfig lru2_linear = PolicyConfig::LruK(2);
  lru2_linear.lru_k.victim_index = VictimIndex::kLinear;
  // The third tuple field divides the timed op count: the O(n) linear scan
  // is ~100x slower per reference, and timing it for the full budget would
  // dominate the bench's wall clock without improving the estimate.
  const std::vector<std::tuple<std::string, PolicyConfig, uint64_t>>
      entries = {
          {"LRU", PolicyConfig::Lru(), 1},
          {"LRU-2", PolicyConfig::LruK(2), 1},
          {"LRU-2/ordered_set", lru2_ordered, 1},
          {"LRU-2/linear", lru2_linear, 32},
          {"LRU-3", PolicyConfig::LruK(3), 1},
          {"LRU-2 CRP=16", PolicyConfig::LruK(2, /*crp=*/16), 1},
          {"LFU", PolicyConfig::Lfu(), 1},
          {"FIFO", PolicyConfig::Of(PolicyKind::kFifo), 1},
          {"CLOCK", PolicyConfig::Of(PolicyKind::kClock), 1},
          {"GCLOCK", PolicyConfig::Of(PolicyKind::kGClock), 1},
          {"MRU", PolicyConfig::Of(PolicyKind::kMru), 1},
          {"RANDOM", PolicyConfig::Of(PolicyKind::kRandom), 1},
          {"2Q", PolicyConfig::TwoQ(), 1},
          {"ARC", PolicyConfig::Arc(), 1},
      };
  AsciiTable catalog_table({"policy", "ns/ref"});
  for (const auto& [label, config, divisor] : entries) {
    catalog.push_back(RunCatalog(label, config, zipf, catalog_ops / divisor));
    catalog_table.AddRow(
        {catalog.back().name, AsciiTable::Fixed(catalog.back().ns_per_ref, 1)});
  }
  catalog_table.Print();
  catalog_table.MaybeWriteCsvFromEnv("micro_policy_overhead_catalog");

  // --- Victim-index differential + grid ---
  std::printf(
      "\nLRU-2 victim-index structures: 95%% hot / 5%% cold uniform "
      "stream\n\n");
  bool sequences_ok = true;
  std::vector<IndexCell> cells;
  std::vector<double> speedups;
  AsciiTable grid({"victim_index", "resident", "ops/sec", "ns/ref",
                   "vs ordered_set"});
  for (size_t resident : resident_sizes) {
    std::vector<PageId> diff_trace =
        IndexTrace(resident, diff_len, /*seed=*/0xD1FF + resident);
    std::vector<PageId> reference =
        VictimSequence(VictimIndex::kLazyHeap, resident, diff_trace);
    for (VictimIndex mode :
         {VictimIndex::kOrderedSet, VictimIndex::kLinear}) {
      std::vector<PageId> other = VictimSequence(mode, resident, diff_trace);
      if (other != reference) {
        sequences_ok = false;
        std::printf("victim sequence DIVERGED: %s vs lazy_heap at "
                    "resident=%zu (%zu vs %zu evictions)\n",
                    IndexName(mode), resident, other.size(),
                    reference.size());
      }
    }

    std::vector<PageId> trace =
        IndexTrace(resident, 1 << 18, /*seed=*/0xBEEF + resident);
    double ordered_ops = 0.0, lazy_ops = 0.0;
    for (VictimIndex mode : modes) {
      // Same wall-clock reasoning as the catalog: the O(n) scan's ns/ref
      // estimate converges with far fewer references.
      uint64_t ops =
          mode == VictimIndex::kLinear ? index_ops / 8 : index_ops;
      IndexCell cell = RunIndexCell(mode, resident, trace, ops);
      if (mode == VictimIndex::kOrderedSet) ordered_ops = cell.ops_per_sec;
      if (mode == VictimIndex::kLazyHeap) lazy_ops = cell.ops_per_sec;
      cells.push_back(cell);
    }
    double speedup = ordered_ops > 0 ? lazy_ops / ordered_ops : 0.0;
    speedups.push_back(speedup);
    for (const IndexCell& c : cells) {
      if (c.resident != resident) continue;
      grid.AddRow({IndexName(c.index), AsciiTable::Integer(c.resident),
                   AsciiTable::Integer(static_cast<uint64_t>(c.ops_per_sec)),
                   AsciiTable::Fixed(c.ns_per_ref, 1),
                   c.index == VictimIndex::kOrderedSet
                       ? std::string("1.00x")
                       : AsciiTable::Fixed(
                             ordered_ops > 0 ? c.ops_per_sec / ordered_ops
                                             : 0.0,
                             2) + "x"});
    }
  }
  grid.Print();
  grid.MaybeWriteCsvFromEnv("micro_policy_overhead_index");

  bool speedup_ok = true;
  for (double s : speedups) speedup_ok = speedup_ok && s >= 1.5;
  std::printf("\nshape: victim sequences identical across "
              "lazy_heap/ordered_set/linear: %s\n",
              sequences_ok ? "yes" : "NO");
  std::printf("shape: lazy_heap >= 1.5x ordered_set throughput at every "
              "resident size: %s\n",
              speedup_ok ? "yes" : "NO");

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, catalog, cells, sequences_ok, speedups,
              speedup_ok);
    std::printf("wrote %s\n", json_path);
  }
  return sequences_ok && speedup_ok ? 0 : 1;
}
