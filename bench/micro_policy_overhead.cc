// Bookkeeping-overhead microbenchmark (the paper's claim that LRU-K "is
// fairly simple and incurs little bookkeeping overhead"). Measures
// nanoseconds per reference — the full hit-or-admit-with-eviction step at
// a fixed buffer size — for every policy in the catalog, on the Zipfian
// 80-20 stream. An 8.5 ms 1993 disk read is ~10^5 of these steps, so any
// number in the sub-microsecond range substantiates the claim.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

constexpr size_t kCapacity = 1024;
constexpr size_t kTraceLen = 1 << 16;

// Pre-materialized reference stream shared by all runs.
const std::vector<PageId>& Trace() {
  static const std::vector<PageId>& trace = *new std::vector<PageId>([] {
    ZipfianOptions zopt;
    zopt.num_pages = 16384;
    zopt.seed = 77;
    ZipfianWorkload gen(zopt);
    return MaterializeTrace(gen, kTraceLen);
  }());
  return trace;
}

void RunPolicy(benchmark::State& state, const PolicyConfig& config) {
  const std::vector<PageId>& trace = Trace();
  PolicyContext context;
  context.capacity = kCapacity;
  if (config.kind == PolicyKind::kBelady) {
    // Belady consumes the exact stream; rebuild it per iteration batch is
    // too costly, so give it a very long repeated trace.
    context.trace.reserve(trace.size() * 64);
    for (int rep = 0; rep < 64; ++rep) {
      context.trace.insert(context.trace.end(), trace.begin(), trace.end());
    }
  }
  auto policy = MakePolicy(config, context);
  if (!policy.ok()) {
    state.SkipWithError(policy.status().ToString().c_str());
    return;
  }
  ReplacementPolicy& p = **policy;

  size_t i = 0;
  size_t wrapped = 0;
  for (auto _ : state) {
    PageId page = trace[i];
    if (p.IsResident(page)) {
      p.RecordAccess(page, AccessType::kRead);
    } else {
      if (p.ResidentCount() == kCapacity) {
        benchmark::DoNotOptimize(p.Evict());
      }
      p.Admit(page, AccessType::kRead);
    }
    if (++i == trace.size()) {
      i = 0;
      ++wrapped;
      if (config.kind == PolicyKind::kBelady && wrapped >= 63) {
        // Do not run off the oracle's pre-baked future.
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Lru(benchmark::State& s) { RunPolicy(s, PolicyConfig::Lru()); }
void BM_Lru2(benchmark::State& s) { RunPolicy(s, PolicyConfig::LruK(2)); }
void BM_Lru3(benchmark::State& s) { RunPolicy(s, PolicyConfig::LruK(3)); }
void BM_Lru2Crp(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::LruK(2, /*crp=*/16));
}
void BM_Lru2LinearScan(benchmark::State& s) {
  PolicyConfig config = PolicyConfig::LruK(2);
  config.lru_k.use_linear_scan = true;  // The paper's O(n) loop.
  RunPolicy(s, config);
}
void BM_Lfu(benchmark::State& s) { RunPolicy(s, PolicyConfig::Lfu()); }
void BM_Fifo(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::Of(PolicyKind::kFifo));
}
void BM_Clock(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::Of(PolicyKind::kClock));
}
void BM_GClock(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::Of(PolicyKind::kGClock));
}
void BM_Mru(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::Of(PolicyKind::kMru));
}
void BM_RandomPolicy(benchmark::State& s) {
  RunPolicy(s, PolicyConfig::Of(PolicyKind::kRandom));
}
void BM_TwoQ(benchmark::State& s) { RunPolicy(s, PolicyConfig::TwoQ()); }

BENCHMARK(BM_Lru);
BENCHMARK(BM_Lru2);
BENCHMARK(BM_Lru3);
BENCHMARK(BM_Lru2Crp);
BENCHMARK(BM_Lru2LinearScan);
BENCHMARK(BM_Lfu);
BENCHMARK(BM_Fifo);
BENCHMARK(BM_Clock);
BENCHMARK(BM_GClock);
BENCHMARK(BM_Mru);
BENCHMARK(BM_RandomPolicy);
BENCHMARK(BM_TwoQ);

}  // namespace
}  // namespace lruk

BENCHMARK_MAIN();
