// Regret battery for the adaptive meta-policy (DESIGN.md section 11).
//
// Three trace families are chosen so that every fixed expert in the
// `adaptive:lruk2+lfu+mru` mixture is decisively wrong on at least one of
// them, while the meta-policy — switching experts on windowed ghost-cache
// regret — must stay competitive everywhere:
//
//  * zipfian        — stationary 80-20 skew. LRU-2 and LFU are near the A0
//                     optimum; MRU keeps exactly the wrong pages.
//  * moving-hotspot — the hot window migrates (Section 4.3 of the paper:
//                     LFU "does not adapt itself to evolving access
//                     patterns"). LRU-2 tracks the window; LFU's stale
//                     reference counts pin yesterday's hot set.
//  * phase-change   — OLTP bursts over a small hot region alternating with
//                     multi-lap sequential scans over a table larger than
//                     the buffer. Any LRU-like stack (LRU-2 included)
//                     scores zero scan hits on a lapping cyclic scan —
//                     eviction by recency always drops the page the scan
//                     is about to revisit — while MRU retains a stable
//                     prefix of the table.
//
// Every policy is measured over the identical reference string (the
// generator is reset per run); the Belady oracle on the same string gives
// the per-family miss floor, and `regret` is misses above that floor.
//
// Shape checks (also asserted by CI on the JSON artifact):
//  * adaptive misses <= 1.15x the best fixed expert's, on every family;
//  * every fixed expert exceeds that bound on at least one family.
//
// Flags: --json <path>, --quick, and the provenance flags of
// bench_common.h (--git-sha/--build-type/--sanitizer, stamped into the
// JSON by run_quick.sh).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "util/random.h"
#include "util/zipf.h"
#include "workload/moving_hotspot.h"
#include "workload/workload.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

constexpr double kRegretBound = 1.15;

// OLTP bursts (skewed references over pages [0, oltp_pages)) alternating
// with sequential scan phases over pages [oltp_pages, oltp_pages +
// scan_pages). The scan cursor persists across phases, so consecutive
// scan phases keep lapping the same table — the Example 1.2 batch process
// revisiting its relation between interactive bursts.
class PhaseChangeWorkload final : public ReferenceStringGenerator {
 public:
  struct Options {
    uint64_t oltp_pages = 64;
    uint64_t scan_pages = 192;
    uint64_t oltp_refs = 512;   // Per cycle.
    uint64_t scan_refs = 2048;  // Per cycle (several laps of the table).
    double alpha = 0.8;
    double beta = 0.2;
    uint64_t seed = 19931;
  };

  explicit PhaseChangeWorkload(Options options)
      : options_(options),
        dist_(options.alpha, options.beta, options.oltp_pages),
        rng_(options.seed) {}

  PageRef Next() override {
    PageRef ref;
    if (pos_ < options_.oltp_refs) {
      ref.page = static_cast<PageId>(dist_.Sample(rng_) - 1);
    } else {
      ref.page = static_cast<PageId>(options_.oltp_pages + scan_cursor_);
      scan_cursor_ = (scan_cursor_ + 1) % options_.scan_pages;
    }
    if (++pos_ == options_.oltp_refs + options_.scan_refs) pos_ = 0;
    return ref;
  }

  void Reset() override {
    rng_ = RandomEngine(options_.seed);
    pos_ = 0;
    scan_cursor_ = 0;
  }

  uint64_t NumPages() const override {
    return options_.oltp_pages + options_.scan_pages;
  }
  std::string_view Name() const override { return "phase-change"; }

 private:
  Options options_;
  RecursiveSkewDistribution dist_;
  RandomEngine rng_;
  uint64_t pos_ = 0;
  uint64_t scan_cursor_ = 0;
};

struct PolicyRow {
  std::string label;
  std::string spec;
  bool is_adaptive = false;  // Meta-policy rows (reported with MetaStats).
  bool is_expert = false;    // Participates in the best-fixed bound.

  uint64_t misses = 0;
  uint64_t regret = 0;  // misses - belady_misses.
  double hit_ratio = 0.0;
  double ratio_vs_best = 0.0;  // misses / best fixed expert misses.
  // Meta rows only:
  uint64_t switches = 0;
  uint64_t retunes = 0;
  std::string final_expert;
};

struct FamilyResult {
  std::string family;
  size_t capacity = 0;
  uint64_t warmup_refs = 0;
  uint64_t measure_refs = 0;
  uint64_t belady_misses = 0;
  std::vector<PolicyRow> rows;
  uint64_t best_fixed_misses = 0;
  std::string best_fixed;
  bool adaptive_within_bound = false;
  std::vector<std::string> losers;  // Fixed experts over the bound here.
};

// The switching knobs the bench pins on both adaptive rows: windows much
// shorter than a phase-change cycle so the meta-policy can react within a
// scan phase, with enough hysteresis not to flap on the stationary
// families.
void TightenAdaptiveKnobs(PolicyConfig* config) {
  config->adaptive.window_refs = 2048;
  config->adaptive.window_buckets = 8;
  config->adaptive.cooldown_refs = 512;
  config->adaptive.min_window_misses = 16;
  config->adaptive.switch_margin = 0.05;
}

FamilyResult RunFamily(const std::string& family,
                       ReferenceStringGenerator& generator,
                       const SimOptions& sim) {
  FamilyResult out;
  out.family = family;
  out.capacity = sim.capacity;
  out.warmup_refs = sim.warmup_refs;
  out.measure_refs = sim.measure_refs;

  auto belady = SimulatePolicy(PolicyConfig::Belady(), generator, sim);
  if (!belady.ok()) {
    std::fprintf(stderr, "belady on %s: %s\n", family.c_str(),
                 belady.status().ToString().c_str());
    std::exit(1);
  }
  out.belady_misses = belady->misses;

  auto make_row = [](const char* label, const char* spec, bool adaptive) {
    PolicyRow row;
    row.label = label;
    row.spec = spec;
    row.is_adaptive = adaptive;
    row.is_expert = !adaptive;
    return row;
  };
  out.rows = {
      make_row("lru-2", "lruk2", false),
      make_row("lfu", "lfu", false),
      make_row("mru", "mru", false),
      make_row("adaptive", "adaptive:lruk2+lfu+mru", true),
      make_row("adaptive-tuned", "adaptive-tuned:lruk2+lfu+mru", true),
  };

  for (PolicyRow& row : out.rows) {
    auto config = ParsePolicySpec(row.spec);
    if (!config.ok()) {
      std::fprintf(stderr, "parse '%s': %s\n", row.spec.c_str(),
                   config.status().ToString().c_str());
      std::exit(1);
    }
    if (row.is_adaptive) {
      TightenAdaptiveKnobs(&*config);
      // Built by hand (not SimulatePolicy) so the policy object survives
      // the run and its MetaStats can be harvested.
      PolicyContext context;
      context.capacity = sim.capacity;
      auto policy = MakePolicy(*config, context);
      if (!policy.ok()) {
        std::fprintf(stderr, "build '%s': %s\n", row.spec.c_str(),
                     policy.status().ToString().c_str());
        std::exit(1);
      }
      generator.Reset();
      SimResult result = RunSimulation(**policy, generator, sim);
      row.misses = result.misses;
      row.hit_ratio = result.HitRatio();
      MetaPolicyStats meta = (*policy)->GetMetaStats();
      row.switches = meta.switches;
      row.retunes = meta.retunes;
      if (meta.active_expert < meta.experts.size()) {
        row.final_expert = meta.experts[meta.active_expert].name;
      }
    } else {
      auto result = SimulatePolicy(*config, generator, sim);
      if (!result.ok()) {
        std::fprintf(stderr, "simulate '%s': %s\n", row.spec.c_str(),
                     result.status().ToString().c_str());
        std::exit(1);
      }
      row.misses = result->misses;
      row.hit_ratio = result->HitRatio();
    }
    row.regret = row.misses > out.belady_misses
                     ? row.misses - out.belady_misses
                     : 0;
  }

  for (const PolicyRow& row : out.rows) {
    if (!row.is_expert) continue;
    if (out.best_fixed.empty() || row.misses < out.best_fixed_misses) {
      out.best_fixed_misses = row.misses;
      out.best_fixed = row.label;
    }
  }
  const double bound =
      kRegretBound * static_cast<double>(out.best_fixed_misses);
  for (PolicyRow& row : out.rows) {
    row.ratio_vs_best =
        out.best_fixed_misses == 0
            ? 0.0
            : static_cast<double>(row.misses) /
                  static_cast<double>(out.best_fixed_misses);
    if (row.is_expert && static_cast<double>(row.misses) > bound) {
      out.losers.push_back(row.label);
    }
  }
  const PolicyRow* adaptive = nullptr;
  for (const PolicyRow& row : out.rows) {
    if (row.label == "adaptive") adaptive = &row;
  }
  out.adaptive_within_bound =
      adaptive != nullptr && static_cast<double>(adaptive->misses) <= bound;
  return out;
}

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<FamilyResult>& families,
               bool within_everywhere, bool every_expert_loses) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_meta_policy\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f, ",\n  \"regret_bound\": %.2f,\n  \"families\": [\n",
               kRegretBound);
  for (size_t i = 0; i < families.size(); ++i) {
    const FamilyResult& fam = families[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"capacity\": %zu, "
                 "\"warmup_refs\": %llu, \"measure_refs\": %llu,\n"
                 "     \"belady_misses\": %llu, \"best_fixed\": \"%s\", "
                 "\"best_fixed_misses\": %llu,\n"
                 "     \"adaptive_within_bound\": %s, \"losers\": [",
                 fam.family.c_str(), fam.capacity,
                 static_cast<unsigned long long>(fam.warmup_refs),
                 static_cast<unsigned long long>(fam.measure_refs),
                 static_cast<unsigned long long>(fam.belady_misses),
                 fam.best_fixed.c_str(),
                 static_cast<unsigned long long>(fam.best_fixed_misses),
                 fam.adaptive_within_bound ? "true" : "false");
    for (size_t l = 0; l < fam.losers.size(); ++l) {
      std::fprintf(f, "%s\"%s\"", l > 0 ? ", " : "", fam.losers[l].c_str());
    }
    std::fprintf(f, "],\n     \"policies\": [\n");
    for (size_t r = 0; r < fam.rows.size(); ++r) {
      const PolicyRow& row = fam.rows[r];
      std::fprintf(f,
                   "       {\"policy\": \"%s\", \"misses\": %llu, "
                   "\"hit_ratio\": %.4f, \"regret_vs_belady\": %llu, "
                   "\"ratio_vs_best_fixed\": %.3f",
                   row.label.c_str(),
                   static_cast<unsigned long long>(row.misses), row.hit_ratio,
                   static_cast<unsigned long long>(row.regret),
                   row.ratio_vs_best);
      if (row.is_adaptive) {
        std::fprintf(f,
                     ", \"switches\": %llu, \"retunes\": %llu, "
                     "\"final_expert\": \"%s\"",
                     static_cast<unsigned long long>(row.switches),
                     static_cast<unsigned long long>(row.retunes),
                     row.final_expert.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < fam.rows.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < families.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"regret_bound\": %.2f,\n"
               "    \"adaptive_within_bound_everywhere\": %s,\n"
               "    \"every_fixed_expert_loses_somewhere\": %s\n"
               "  }\n}\n",
               kRegretBound, within_everywhere ? "true" : "false",
               every_expert_loses ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<FamilyResult> families;

  {
    ZipfianOptions zopt;
    zopt.num_pages = 2000;
    zopt.seed = 19932;
    ZipfianWorkload workload(zopt);
    SimOptions sim;
    sim.capacity = 100;
    sim.warmup_refs = quick ? 10000 : 30000;
    sim.measure_refs = quick ? 20000 : 100000;
    sim.track_classes = false;
    families.push_back(RunFamily("zipfian", workload, sim));
  }
  {
    MovingHotspotOptions mopt;
    mopt.num_pages = 10000;
    mopt.hot_pages = 100;
    mopt.hot_probability = 0.9;
    mopt.epoch_length = quick ? 5000 : 10000;
    mopt.shift = 2000;  // Near-total turnover: stale LFU counts mislead.
    mopt.seed = 19933;
    MovingHotspotWorkload workload(mopt);
    SimOptions sim;
    sim.capacity = 150;
    sim.warmup_refs = quick ? 15000 : 50000;
    sim.measure_refs = quick ? 30000 : 150000;
    sim.track_classes = false;
    families.push_back(RunFamily("moving-hotspot", workload, sim));
  }
  {
    PhaseChangeWorkload::Options popt;  // 2560-ref cycle, 192-page table.
    PhaseChangeWorkload workload(popt);
    SimOptions sim;
    sim.capacity = 100;
    sim.warmup_refs = quick ? 10240 : 20480;    // Whole cycles.
    sim.measure_refs = quick ? 25600 : 102400;  // Whole cycles.
    sim.track_classes = false;
    families.push_back(RunFamily("phase-change", workload, sim));
  }

  AsciiTable table({"family", "policy", "misses", "hit_ratio", "regret",
                    "vs_best", "switches", "final_expert"});
  for (const FamilyResult& fam : families) {
    for (const PolicyRow& row : fam.rows) {
      table.AddRow({fam.family, row.label, AsciiTable::Integer(row.misses),
                    AsciiTable::Fixed(row.hit_ratio, 4),
                    AsciiTable::Integer(row.regret),
                    AsciiTable::Fixed(row.ratio_vs_best, 3) + "x",
                    row.is_adaptive ? AsciiTable::Integer(row.switches) : "-",
                    row.is_adaptive ? row.final_expert : "-"});
    }
    table.AddRow({fam.family, "belady", AsciiTable::Integer(fam.belady_misses),
                  "-", "0", "-", "-", "-"});
  }
  table.Print();
  table.MaybeWriteCsvFromEnv("ablation_meta_policy");

  bool within_everywhere = true;
  for (const FamilyResult& fam : families) {
    within_everywhere = within_everywhere && fam.adaptive_within_bound;
    std::printf("shape: [%s] adaptive within %.2fx of best fixed expert "
                "(%s): %s\n",
                fam.family.c_str(), kRegretBound, fam.best_fixed.c_str(),
                fam.adaptive_within_bound ? "yes" : "NO");
  }
  bool every_expert_loses = true;
  for (const char* expert : {"lru-2", "lfu", "mru"}) {
    bool loses = false;
    for (const FamilyResult& fam : families) {
      for (const std::string& loser : fam.losers) {
        loses = loses || loser == expert;
      }
    }
    every_expert_loses = every_expert_loses && loses;
    std::printf("shape: fixed expert %s exceeds the bound on >=1 family: %s\n",
                expert, loses ? "yes" : "NO");
  }

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, families, within_everywhere,
              every_expert_loses);
    std::printf("wrote %s\n", json_path);
  }
  return within_everywhere && every_expert_loses ? 0 : 1;
}
