// Transient response after a hot-set shift — the quantified version of
// Section 4.1's "LRU-3 is less responsive than LRU-2 in the sense that it
// needs more references to adapt itself to dynamic changes of reference
// frequencies". The hot window (100 of 10,000 pages, 90% of references)
// jumps to a disjoint region after 60,000 references; we report each
// policy's recovery time (references until a 1,000-reference window
// reaches 90% of its pre-shift steady state) and the windowed hit-ratio
// series right after the shift.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/convergence.h"
#include "sim/table.h"
#include "workload/moving_hotspot.h"

int main() {
  using namespace lruk;

  MovingHotspotOptions mopt;
  mopt.num_pages = 10000;
  mopt.hot_pages = 100;
  mopt.hot_probability = 0.9;
  mopt.epoch_length = 60000;  // The shift happens exactly here.
  mopt.shift = 5000;          // To a disjoint region.
  mopt.seed = 19946;

  ConvergenceOptions copt;
  copt.capacity = 150;
  copt.pre_shift_refs = mopt.epoch_length;
  copt.post_shift_refs = 60000;
  copt.window = 1000;
  copt.recovery_fraction = 0.9;

  std::printf("Convergence after a hot-set shift: B=%zu, window=%llu "
              "refs, recovery at %.0f%% of steady state\n\n",
              copt.capacity,
              static_cast<unsigned long long>(copt.window),
              100 * copt.recovery_fraction);

  AsciiTable table({"policy", "steady-state", "recovery-refs",
                    "+1k", "+3k", "+10k", "+30k"});
  std::vector<uint64_t> recovery_by_k;

  for (const char* name :
       {"LRU", "LRU-2", "LRU-3", "LRU-4", "LRU-8", "2Q", "ARC", "LFU"}) {
    MovingHotspotWorkload gen(mopt);
    auto result = MeasureConvergence(*ParsePolicyName(name), gen, copt);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& windows = result->post_shift_windows;
    auto window_at = [&](size_t refs) {
      size_t idx = refs / copt.window - 1;
      return idx < windows.size() ? windows[idx] : 0.0;
    };
    std::string recovery =
        result->recovery_refs
            ? AsciiTable::Integer(*result->recovery_refs)
            : std::string(">60000");
    std::string_view n(name);
    if (n == "LRU" || n.substr(0, 4) == "LRU-") {
      recovery_by_k.push_back(result->recovery_refs.value_or(UINT64_MAX));
    }
    table.AddRow({name, AsciiTable::Fixed(result->steady_state, 3),
                  recovery, AsciiTable::Fixed(window_at(1000), 3),
                  AsciiTable::Fixed(window_at(3000), 3),
                  AsciiTable::Fixed(window_at(10000), 3),
                  AsciiTable::Fixed(window_at(30000), 3)});
  }
  table.Print();

  // recovery_by_k holds K = 1, 2, 3, 4, 8.
  bool monotone = true;
  for (size_t i = 1; i < recovery_by_k.size(); ++i) {
    if (recovery_by_k[i] + copt.window < recovery_by_k[i - 1]) {
      monotone = false;  // Allow one-window ties.
    }
  }
  std::printf("\nshape: recovery time is non-decreasing in K "
              "(responsiveness falls as history deepens): %s\n",
              monotone ? "yes" : "NO");
  return 0;
}
