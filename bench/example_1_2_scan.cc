// Example 1.2: "cache swamping by sequential scans causes interactive
// response time to deteriorate noticeably." Interactive processes with
// high locality (a hot set taking 95% of their references) share the
// buffer with batch sequential scans over the whole database.
//
// The experiment runs three phases against one persistent policy instance:
//   before — interactive traffic only;
//   during — the batch scan supplies 70% of references;
//   after  — interactive traffic only again (recovery).
// and reports the interactive (hot-class) hit ratio per phase for LRU-1,
// LRU-2, 2Q and MRU. The paper's claim: LRU-1 collapses during the scan;
// LRU-2 does not, because one-touch scan pages keep b_t(p,2) = infinity
// and are replaced early.

#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/sequential.h"

int main() {
  using namespace lruk;

  MixedScanOptions mopt;
  mopt.hot_pages = 500;
  mopt.total_pages = 100000;  // Scaled-down Example 1.2 (5000 of 1M).
  mopt.hot_probability = 0.95;
  mopt.scan_fraction = 0.7;
  mopt.seed = 19935;

  constexpr size_t kBuffer = 700;
  constexpr uint64_t kPhaseRefs = 120000;

  std::printf("Example 1.2: scan resistance. hot=%llu of %llu pages, "
              "B=%zu, %llu refs per phase\n",
              static_cast<unsigned long long>(mopt.hot_pages),
              static_cast<unsigned long long>(mopt.total_pages), kBuffer,
              static_cast<unsigned long long>(kPhaseRefs));
  std::printf("(hot-class hit ratio per phase)\n\n");

  AsciiTable table(
      {"policy", "before-scan", "during-scan", "after-scan", "dip"});

  double lru1_dip = 0.0;
  double lru2_dip = 0.0;

  for (const char* name : {"LRU", "LRU-2", "2Q", "ARC", "MRU"}) {
    auto config = ParsePolicyName(name);
    if (!config) return 1;
    PolicyContext context;
    context.capacity = kBuffer;
    auto policy = MakePolicy(*config, context);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   policy.status().ToString().c_str());
      return 1;
    }

    MixedScanWorkload gen(mopt);
    SimOptions sim;
    sim.capacity = kBuffer;
    sim.warmup_refs = 30000;
    sim.measure_refs = kPhaseRefs;

    // Phase 1: no scan.
    gen.SetScanActive(false);
    SimResult before = RunSimulation(**policy, gen, sim);
    // Phase 2: scan on (no further warmup: the disruption is the point).
    gen.SetScanActive(true);
    sim.warmup_refs = 0;
    SimResult during = RunSimulation(**policy, gen, sim);
    // Phase 3: scan off again.
    gen.SetScanActive(false);
    SimResult after = RunSimulation(**policy, gen, sim);

    double hot_before = before.classes[0].HitRatio();
    double hot_during = during.classes[0].HitRatio();
    double hot_after = after.classes[0].HitRatio();
    double dip = hot_before - hot_during;
    if (std::string_view(name) == "LRU") lru1_dip = dip;
    if (std::string_view(name) == "LRU-2") lru2_dip = dip;

    table.AddRow({name, AsciiTable::Fixed(hot_before, 3),
                  AsciiTable::Fixed(hot_during, 3),
                  AsciiTable::Fixed(hot_after, 3),
                  AsciiTable::Fixed(dip, 3)});
  }

  table.Print();
  std::printf("\nshape: LRU-1's scan dip (%.3f) dwarfs LRU-2's (%.3f): %s\n",
              lru1_dip, lru2_dip,
              lru1_dip > 5 * lru2_dip + 0.02 ? "yes" : "NO");
  return 0;
}
