// Theory vs. simulation: the [DANTOWS] stack approximation and the
// characteristic-time (Che) approximation of LRU's hit ratio — plus the
// characteristic-time model GENERALIZED TO LRU-K (a page is resident iff
// it has >= K arrivals within the window T, i.e. its HIST(p,K) is recent
// enough) — evaluated on the exact probability vectors of the Table
// 4.1/4.2 workloads against the event-driven simulator. The LRU-K
// generalization reproduces the papers' LRU-2/LRU-3 columns to ~±0.004:
// the whole of Table 4.1 is derivable in closed form. The A0 column is
// exact by construction (sum of the B largest probabilities).

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/lru_model.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/two_pool.h"
#include "workload/zipfian_workload.h"

namespace {

// Runs one workload's comparison; returns the max |analytic - simulated|
// over the LRU column.
double CompareOnWorkload(const char* label,
                         lruk::ReferenceStringGenerator& gen,
                         const std::vector<size_t>& capacities,
                         uint64_t warmup, uint64_t measure) {
  using namespace lruk;
  auto beta = gen.Probabilities();
  if (!beta) return 1.0;

  std::printf("%s\n", label);
  AsciiTable table({"B", "LRU sim", "Dan-Towsley", "Che", "LRU-2 sim",
                    "Che-K2", "A0 sim", "A0 exact"});
  double worst = 0.0;
  for (size_t b : capacities) {
    SimOptions sim;
    sim.capacity = b;
    sim.warmup_refs = warmup;
    sim.measure_refs = measure;
    sim.track_classes = false;
    auto lru = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
    auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
    auto a0 = SimulatePolicy(PolicyConfig::A0(), gen, sim);
    if (!lru.ok() || !lru2.ok() || !a0.ok()) return 1.0;

    double dt = DanTowsleyLruHitRatio(*beta, b);
    double che = CheLruHitRatio(*beta, b);
    double che2 = CheLruKHitRatio(*beta, 2, b);
    double a0_exact = A0HitRatio(*beta, b);
    worst = std::max(worst, std::abs(dt - lru->HitRatio()));
    worst = std::max(worst, std::abs(che - lru->HitRatio()));
    worst = std::max(worst, std::abs(che2 - lru2->HitRatio()));
    table.AddRow({AsciiTable::Integer(b),
                  AsciiTable::Fixed(lru->HitRatio(), 3),
                  AsciiTable::Fixed(dt, 3), AsciiTable::Fixed(che, 3),
                  AsciiTable::Fixed(lru2->HitRatio(), 3),
                  AsciiTable::Fixed(che2, 3),
                  AsciiTable::Fixed(a0->HitRatio(), 3),
                  AsciiTable::Fixed(a0_exact, 3)});
  }
  table.Print();
  std::printf("\n");
  return worst;
}

}  // namespace

int main() {
  using namespace lruk;

  std::printf("Analytic LRU models ([DANTOWS] stack recursion + "
              "characteristic-time fixed point) vs simulation\n\n");

  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  topt.seed = 19948;
  TwoPoolWorkload two_pool(topt);
  double worst1 = CompareOnWorkload(
      "Two-pool (Table 4.1 workload):", two_pool,
      {60, 100, 140, 200, 300, 450}, 10000, 100000);

  ZipfianOptions zopt;
  zopt.num_pages = 1000;
  zopt.seed = 19949;
  ZipfianWorkload zipf(zopt);
  double worst2 = CompareOnWorkload("Zipfian 80-20 (Table 4.2 workload):",
                                    zipf, {40, 100, 200, 500}, 10000,
                                    100000);

  double worst = std::max(worst1, worst2);
  std::printf("shape: analytic LRU and LRU-2 models agree with the "
              "simulator (max |error| = %.3f, threshold 0.02): %s\n",
              worst, worst < 0.02 ? "yes" : "NO");
  std::printf("(the two-pool stream alternates pools rather than drawing "
              "IRM-independently, so sub-0.02 agreement also validates "
              "that the alternation is immaterial at these sizes)\n");
  return 0;
}
