#!/usr/bin/env bash
# Quick bench smoke: runs the two contention/scaling microbenchmarks in
# --quick mode and leaves machine-readable results at the repo root
# (BENCH_hotpath.json from micro_sharded_pool, BENCH_contention.json from
# micro_contention). Validates that both files parse as JSON. CI runs this
# to catch bench regressions and malformed emitters; the full-length runs
# stay manual (drop --quick).
#
# Usage: bench/run_quick.sh            # expects binaries in ./build/bench
#        BUILD=build-rel bench/run_quick.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}

if [[ ! -x "$BUILD/bench/micro_sharded_pool" || \
      ! -x "$BUILD/bench/micro_contention" ]]; then
  echo "bench binaries not found under $BUILD/bench — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

"$BUILD/bench/micro_sharded_pool" --quick --json BENCH_hotpath.json
"$BUILD/bench/micro_contention" --quick --json BENCH_contention.json

for f in BENCH_hotpath.json BENCH_contention.json; do
  python3 -m json.tool "$f" > /dev/null
  echo "$f: valid JSON"
done
