#!/usr/bin/env bash
# Quick bench smoke: runs the six hand-rolled microbenchmarks in --quick
# mode and leaves machine-readable results at the repo root
# (BENCH_hotpath.json from micro_sharded_pool, BENCH_contention.json from
# micro_contention, BENCH_policy_overhead.json from micro_policy_overhead,
# BENCH_faults.json from fault_sweep, BENCH_async_io.json from
# micro_async_io, BENCH_meta_policy.json from ablation_meta_policy).
# Each JSON is stamped with provenance (git SHA, CMake build type,
# sanitizer) so a result file can always be traced to the commit and build
# flavour that produced it. Validates that every file parses as JSON. CI
# runs this to catch bench regressions and malformed emitters; the
# full-length runs stay manual (--full).
#
# Usage: bench/run_quick.sh [--full] [--sanitizer <name>]
#                           [--build-type <type>]
#        BUILD=build-rel bench/run_quick.sh
#
# --full drops --quick (full-length op counts); --sanitizer records which
# sanitizer the binaries were built with (default none); --build-type
# overrides the CMAKE_BUILD_TYPE auto-detected from $BUILD/CMakeCache.txt.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}

QUICK=--quick
SANITIZER=none
BUILD_TYPE=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) QUICK="" ;;
    --sanitizer) SANITIZER="$2"; shift ;;
    --build-type) BUILD_TYPE="$2"; shift ;;
    *) echo "usage: $0 [--full] [--sanitizer <name>] [--build-type <type>]" >&2
       exit 2 ;;
  esac
  shift
done

GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [[ -z "$BUILD_TYPE" ]]; then
  BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
      "$BUILD/CMakeCache.txt" 2>/dev/null || true)
  BUILD_TYPE=${BUILD_TYPE:-unknown}
fi

for bin in micro_sharded_pool micro_contention micro_policy_overhead \
           fault_sweep micro_async_io ablation_meta_policy; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    echo "bench binaries not found under $BUILD/bench — build first:" >&2
    echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
    exit 1
  fi
done

PROVENANCE=(--git-sha "$GIT_SHA" --build-type "$BUILD_TYPE"
            --sanitizer "$SANITIZER")

"$BUILD/bench/micro_sharded_pool" $QUICK --json BENCH_hotpath.json \
    "${PROVENANCE[@]}"
"$BUILD/bench/micro_contention" $QUICK --json BENCH_contention.json \
    "${PROVENANCE[@]}"
"$BUILD/bench/micro_policy_overhead" $QUICK \
    --json BENCH_policy_overhead.json "${PROVENANCE[@]}"
"$BUILD/bench/fault_sweep" $QUICK --json BENCH_faults.json \
    "${PROVENANCE[@]}"
"$BUILD/bench/micro_async_io" $QUICK --json BENCH_async_io.json \
    "${PROVENANCE[@]}"
"$BUILD/bench/ablation_meta_policy" $QUICK --json BENCH_meta_policy.json \
    "${PROVENANCE[@]}"

for f in BENCH_hotpath.json BENCH_contention.json \
         BENCH_policy_overhead.json BENCH_faults.json \
         BENCH_async_io.json BENCH_meta_policy.json; do
  python3 -m json.tool "$f" > /dev/null
  echo "$f: valid JSON"
done
