// Async-I/O microbenchmark: measures the two wins the IoDispatcher claims.
//
// Section 1 — scan latency (deterministic, inline dispatcher). Example
// 1.2-style workloads driven through a real BufferPool over a simulated
// 10 ms disk: a pure sequential scan, and an interactive/hot mix where a
// batch scan reads sequential chunks between bursts of hot-set traffic.
// Readahead off is the synchronous baseline: every scan page is a demand
// miss, so the caller stalls misses x read_micros of simulated I/O time.
// Readahead on prefetches the detected run; the same pages still cross
// the disk, but almost none of the reads happen on the demand path. The
// pool runs LRU-2 with a correlated reference period so the
// prefetch-admit + demand-hit pair counts as one uncorrelated reference
// — scanned pages stay preferred victims (the paper's scan-resistance
// story) while the not-yet-consumed readahead window, being the most
// recently touched of the once-referenced pages, survives until demand.
//
// Section 2 — coalescing (threaded, worker mode). Eight threads churn a
// skewed page set over a disk wrapper that sleeps for real microseconds
// per read, widening the window in which concurrent misses on the same
// page land; the per-page request tracker folds those into one physical
// read. The background flusher runs too, so eviction write-back is
// measured off the miss path.
//
// Section 3 — write-behind eviction (threaded, worker mode). A
// dirty-heavy churn (70% writes) over a disk whose writes cost 5x its
// reads, paced below disk saturation so the question is purely WHERE the
// victim write-back runs: on the miss path (sync mode stalls the fetch
// for write + read), reduced by background cleaning (flusher mode), or
// off the miss path entirely (write-behind posts the pinned-copy victim
// write on the Flush lane and admits immediately; the adaptive flusher
// paces cleaning by dirty ratio). Client-side fetch latency percentiles
// and the dispatcher's per-lane counters expose the difference.
//
// Shape checks (CI greps for ": NO"):
//  * readahead — simulated foreground stall with readahead on is at
//    least 5x below the synchronous baseline in every scan pair, with
//    prefetch_used nonzero.
//  * coalescing — coalesced_reads nonzero in every threaded cell, and
//    physical reads never exceed misses.
//  * background cleaning — background_cleans nonzero in every threaded
//    cell.
//  * write-behind — foreground victim writes are <= 5% of all victim
//    writes in every write-behind cell (writebehind_writes carries the
//    rest), and client fetch p99 beats the sync baseline's.
//  * accounting — hits + misses == ops issued in every cell.
//
// Flags: --json <path> writes machine-readable results (BENCH_async_io
// trajectory); --quick shrinks op counts for CI smoke runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr double kReadMicros = 10000.0;  // 10 ms simulated disk read.
constexpr Timestamp kScanCrp = 64;       // Covers the admit->demand gap.

// ---------------------------------------------------------------------
// Section 1: scan latency.

struct ScanCell {
  std::string workload;  // "sequential-scan" | "example-1.2-mix"
  std::string pool;      // "single-latch" | "sharded x4"
  bool readahead = false;
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_used = 0;
  uint64_t physical_reads = 0;
  double foreground_stall_ms = 0.0;
  bool accounting_exact = false;
};

std::unique_ptr<PoolInterface> MakePool(const std::string& pool_kind,
                                        size_t frames, DiskManager* disk,
                                        const BufferPoolOptions& options) {
  if (pool_kind == "single-latch") {
    return std::make_unique<BufferPool>(
        frames, disk,
        std::make_unique<LruKPolicy>(LruKOptions{
            .k = 2,
            .correlated_reference_period = kScanCrp,
            .capacity_hint = frames}),
        options);
  }
  auto factory =
      MakeShardPolicyFactory(PolicyConfig::LruK(2, kScanCrp));
  if (!factory.ok()) {
    std::fprintf(stderr, "factory: %s\n",
                 factory.status().ToString().c_str());
    return nullptr;
  }
  return std::make_unique<ShardedBufferPool>(frames, /*num_shards=*/4, disk,
                                             *factory, options);
}

// Allocates `db_pages` through the pool, flushes, and zeroes all stats so
// the measured phase starts from a cold-but-allocated database.
bool AllocateDb(PoolInterface* pool, DiskManager* disk, uint64_t db_pages,
                std::vector<PageId>* pages) {
  pages->clear();
  pages->reserve(db_pages);
  for (uint64_t i = 0; i < db_pages; ++i) {
    auto page = pool->NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   page.status().ToString().c_str());
      return false;
    }
    pages->push_back((*page)->id());
    (void)pool->UnpinPage((*page)->id(), false);
  }
  if (!pool->FlushAll().ok()) return false;
  pool->ResetStats();
  disk->ResetStats();
  return true;
}

// One deterministic scan cell: single-threaded, inline dispatcher, so the
// demand-miss count (and with it the simulated foreground stall) is exact
// and replayable.
ScanCell RunScanCell(const std::string& workload,
                     const std::string& pool_kind, bool readahead,
                     uint64_t scan_pages, uint64_t hot_pages,
                     uint64_t chunk) {
  ScanCell cell;
  cell.workload = workload;
  cell.pool = pool_kind;
  cell.readahead = readahead;

  SimDiskOptions disk_options;
  disk_options.read_micros = kReadMicros;
  disk_options.write_micros = kReadMicros;
  SimDiskManager disk(disk_options);

  constexpr size_t kFrames = 512;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 0;  // Inline: deterministic, byte-exact.
  options.readahead.enabled = readahead;

  auto pool = MakePool(pool_kind, kFrames, &disk, options);
  if (pool == nullptr) return cell;

  std::vector<PageId> pages;
  if (!AllocateDb(pool.get(), &disk, scan_pages + hot_pages, &pages)) {
    return cell;
  }

  // Warm the hot set (mix workload only) so its pages carry >= 2
  // uncorrelated references and are replacement-protected before the scan
  // starts competing for frames.
  RandomEngine rng(20260809);
  if (hot_pages > 0) {
    for (uint64_t round = 0; round < 4; ++round) {
      for (uint64_t h = 0; h < hot_pages; ++h) {
        PageId p = pages[scan_pages + h];
        auto page = pool->FetchPage(p, AccessType::kRead);
        if (page.ok()) (void)pool->UnpinPage(p, false);
      }
    }
    pool->ResetStats();
    disk.ResetStats();
  }

  uint64_t ops = 0;
  uint64_t next_scan = 0;
  while (next_scan < scan_pages) {
    // A chunk of the batch scan...
    for (uint64_t i = 0; i < chunk && next_scan < scan_pages; ++i) {
      PageId p = pages[next_scan++];
      auto page = pool->FetchPage(p, AccessType::kRead);
      if (page.ok()) (void)pool->UnpinPage(p, false);
      ++ops;
    }
    // ...then a burst of interactive traffic (mix workload only).
    for (uint64_t i = 0; i < chunk && hot_pages > 0; ++i) {
      PageId p = pages[scan_pages + rng.NextBounded(hot_pages)];
      auto page = pool->FetchPage(p, AccessType::kRead);
      if (page.ok()) (void)pool->UnpinPage(p, false);
      ++ops;
    }
  }

  BufferPoolStats stats = pool->stats();
  cell.ops = ops;
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.prefetch_issued = stats.prefetch_issued;
  cell.prefetch_used = stats.prefetch_used;
  cell.physical_reads = disk.stats().reads;
  // The caller blocks only on demand misses; prefetch reads retire off
  // the demand path (and overlap with compute once io_workers > 0).
  cell.foreground_stall_ms =
      static_cast<double>(stats.misses) * kReadMicros / 1000.0;
  cell.accounting_exact = stats.hits + stats.misses == ops;
  return cell;
}

// ---------------------------------------------------------------------
// Section 2: coalescing under real concurrency.

// Wraps a DiskManager and sleeps for real microseconds per read (and
// optionally per write), so a miss stays in flight long enough for
// concurrent misses on the same page to pile onto the request tracker (a
// simulated-time disk returns instantly and would shrink the coalescing
// window to nearly nothing), and so a foreground victim write-back costs
// real, measurable client latency in the write-behind cells.
class SleepingDiskManager final : public DiskManager {
 public:
  SleepingDiskManager(DiskManager* inner, uint64_t read_sleep_micros,
                      uint64_t write_sleep_micros = 0)
      : inner_(inner),
        read_sleep_micros_(read_sleep_micros),
        write_sleep_micros_(write_sleep_micros) {}

  Status ReadPage(PageId p, char* out) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds(read_sleep_micros_));
    return inner_->ReadPage(p, out);
  }
  Status WritePage(PageId p, const char* data) override {
    if (write_sleep_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(write_sleep_micros_));
    }
    return inner_->WritePage(p, data);
  }
  Result<PageId> AllocatePage() override { return inner_->AllocatePage(); }
  Status DeallocatePage(PageId p) override {
    return inner_->DeallocatePage(p);
  }
  uint64_t NumAllocatedPages() const override {
    return inner_->NumAllocatedPages();
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  DiskManager* inner_;
  uint64_t read_sleep_micros_;
  uint64_t write_sleep_micros_;
};

struct CoalesceCell {
  std::string pool;
  uint64_t threads = 0;
  uint64_t workers = 0;
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced_reads = 0;
  uint64_t background_cleans = 0;
  uint64_t physical_reads = 0;
  double coalescing_ratio = 0.0;
  double wall_seconds = 0.0;
  bool accounting_exact = false;
  bool reads_bounded = false;
};

CoalesceCell RunCoalesceCell(const std::string& pool_kind,
                             uint64_t ops_per_thread) {
  CoalesceCell cell;
  cell.pool = pool_kind;
  cell.threads = 8;
  cell.workers = 4;

  constexpr size_t kFrames = 32;
  constexpr uint64_t kDbPages = 64;
  constexpr double kWriteFraction = 0.3;

  SimDiskOptions disk_options;
  disk_options.read_micros = 0.0;
  disk_options.write_micros = 0.0;
  SimDiskManager base(disk_options);
  SleepingDiskManager disk(&base, /*read_sleep_micros=*/200);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = cell.workers;
  options.io_queue_depth = 64;
  options.flusher = true;
  options.flusher_every_ops = 32;
  options.flusher_batch = 8;
  options.batch_capacity = 64;

  std::unique_ptr<PoolInterface> pool;
  if (pool_kind == "single-latch") {
    pool = std::make_unique<BufferPool>(
        kFrames, &disk,
        std::make_unique<LruKPolicy>(
            LruKOptions{.k = 2, .capacity_hint = kFrames}),
        options);
  } else {
    auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
    if (!factory.ok()) return cell;
    pool = std::make_unique<ShardedBufferPool>(kFrames, /*num_shards=*/4,
                                               &disk, *factory, options);
  }

  std::vector<PageId> pages;
  if (!AllocateDb(pool.get(), &disk, kDbPages, &pages)) return cell;

  std::atomic<uint64_t> issued{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cell.threads);
  for (uint64_t t = 0; t < cell.threads; ++t) {
    threads.emplace_back([&, t] {
      RecursiveSkewDistribution dist(0.8, 0.2, kDbPages);
      RandomEngine rng(0xA51Cull * (t + 1));
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(kWriteFraction);
        auto page = pool->FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        issued.fetch_add(1, std::memory_order_relaxed);
        if (page.ok()) (void)pool->UnpinPage(p, write);
      }
    });
  }
  for (auto& th : threads) th.join();
  cell.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  BufferPoolStats stats = pool->stats();
  cell.ops = issued.load();
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.coalesced_reads = stats.coalesced_reads;
  cell.background_cleans = stats.background_cleans;
  cell.physical_reads = disk.stats().reads;
  cell.coalescing_ratio =
      stats.misses > 0
          ? static_cast<double>(stats.coalesced_reads) / stats.misses
          : 0.0;
  cell.accounting_exact = stats.hits + stats.misses == cell.ops;
  // Every coalesced miss shares another miss's read; prefetching is off,
  // so the disk can never see more read ops than the pool counted misses.
  cell.reads_bounded = cell.physical_reads <= cell.misses;
  return cell;
}

// ---------------------------------------------------------------------
// Section 3: write-behind eviction under a dirty-heavy churn.

struct WriteBehindCell {
  std::string mode;  // "sync" | "flusher" | "write-behind" | "wb sharded x4"
  uint64_t threads = 0;
  uint64_t workers = 0;
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dirty_writebacks = 0;  // Foreground (miss-path) victim writes.
  uint64_t writebehind_writes = 0;
  uint64_t writebehind_readmits = 0;
  uint64_t io_drops_flush = 0;
  uint64_t io_drops_prefetch = 0;
  uint64_t background_cleans = 0;
  IoDispatcherStats dispatcher;  // Per-lane depth/drop/wait accounting.
  double fetch_p50_micros = 0.0;
  double fetch_p99_micros = 0.0;
  double wall_seconds = 0.0;
  bool accounting_exact = false;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

// Dirty-heavy churn: 70% of unpins dirty the page, writes cost 5x reads
// (150 us vs 30 us of real sleep), and each client thread paces itself
// with think time so the offered load stays below disk saturation —
// write-behind reorders work, it does not create capacity, so the
// interesting regime is the one where the Flush lane CAN keep up and the
// only question is whether the miss path still pays for victim writes.
WriteBehindCell RunWriteBehindCell(const std::string& mode,
                                   uint64_t ops_per_thread) {
  WriteBehindCell cell;
  cell.mode = mode;
  cell.threads = 6;
  cell.workers = 4;

  constexpr size_t kFrames = 64;
  constexpr uint64_t kDbPages = 96;
  constexpr double kWriteFraction = 0.7;
  constexpr uint64_t kThinkMicros = 150;

  SimDiskOptions disk_options;
  disk_options.read_micros = 0.0;
  disk_options.write_micros = 0.0;
  SimDiskManager base(disk_options);
  SleepingDiskManager disk(&base, /*read_sleep_micros=*/30,
                           /*write_sleep_micros=*/150);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = cell.workers;
  options.io_queue_depth = 64;
  options.batch_capacity = 64;
  if (mode != "sync") {
    options.flusher = true;
    options.flusher_every_ops = 32;
    options.flusher_batch = 8;
  }
  bool write_behind = mode == "write-behind" || mode == "wb sharded x4";
  if (write_behind) {
    options.write_behind = true;
    options.flusher_adaptive = true;  // Pace cleaning by dirty ratio.
  }

  std::unique_ptr<PoolInterface> pool;
  IoDispatcher* dispatcher = nullptr;
  if (mode == "wb sharded x4") {
    auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
    if (!factory.ok()) return cell;
    auto sharded = std::make_unique<ShardedBufferPool>(
        kFrames, /*num_shards=*/4, &disk, *factory, options);
    dispatcher = sharded->io_dispatcher();
    pool = std::move(sharded);
  } else {
    auto single = std::make_unique<BufferPool>(
        kFrames, &disk,
        std::make_unique<LruKPolicy>(
            LruKOptions{.k = 2, .capacity_hint = kFrames}),
        options);
    dispatcher = single->io_dispatcher();
    pool = std::move(single);
  }

  std::vector<PageId> pages;
  if (!AllocateDb(pool.get(), &disk, kDbPages, &pages)) return cell;

  std::atomic<uint64_t> issued{0};
  std::mutex merge_latch;
  std::vector<double> fetch_micros;
  fetch_micros.reserve(cell.threads * ops_per_thread);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cell.threads);
  for (uint64_t t = 0; t < cell.threads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(0xD17Bull * (t + 1));
      std::vector<double> local;
      local.reserve(ops_per_thread);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId p = pages[rng.NextBounded(kDbPages)];
        bool write = rng.NextBernoulli(kWriteFraction);
        auto before = std::chrono::steady_clock::now();
        auto page = pool->FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        local.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - before)
                            .count());
        issued.fetch_add(1, std::memory_order_relaxed);
        if (page.ok()) (void)pool->UnpinPage(p, write);
        std::this_thread::sleep_for(std::chrono::microseconds(kThinkMicros));
      }
      std::lock_guard<std::mutex> guard(merge_latch);
      fetch_micros.insert(fetch_micros.end(), local.begin(), local.end());
    });
  }
  for (auto& th : threads) th.join();
  cell.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  BufferPoolStats stats = pool->stats();
  cell.ops = issued.load();
  cell.hits = stats.hits;
  cell.misses = stats.misses;
  cell.dirty_writebacks = stats.dirty_writebacks;
  cell.writebehind_writes = stats.writebehind_writes;
  cell.writebehind_readmits = stats.writebehind_readmits;
  cell.io_drops_flush = stats.io_drops_flush;
  cell.io_drops_prefetch = stats.io_drops_prefetch;
  cell.background_cleans = stats.background_cleans;
  if (dispatcher != nullptr) cell.dispatcher = dispatcher->stats();
  cell.fetch_p50_micros = Percentile(&fetch_micros, 0.50);
  cell.fetch_p99_micros = Percentile(&fetch_micros, 0.99);
  cell.accounting_exact = stats.hits + stats.misses == cell.ops;
  return cell;
}

// ---------------------------------------------------------------------

void WriteJson(const char* path, const BenchProvenance& provenance,
               const std::vector<ScanCell>& scan_cells,
               const std::vector<CoalesceCell>& coalesce_cells,
               const std::vector<WriteBehindCell>& wb_cells,
               bool readahead_ok, bool prefetch_used_ok, bool coalesce_ok,
               bool cleans_ok, bool wb_foreground_ok, bool wb_p99_ok,
               bool accounting_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_async_io\",\n");
  WriteProvenanceJson(f, provenance);
  std::fprintf(f, ",\n  \"read_micros\": %.1f,\n  \"scan_cells\": [\n",
               kReadMicros);
  for (size_t i = 0; i < scan_cells.size(); ++i) {
    const ScanCell& c = scan_cells[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"pool\": \"%s\", \"readahead\": %s, "
        "\"ops\": %llu, \"hits\": %llu, \"misses\": %llu, "
        "\"prefetch_issued\": %llu, \"prefetch_used\": %llu, "
        "\"physical_reads\": %llu, \"foreground_stall_ms\": %.1f}%s\n",
        c.workload.c_str(), c.pool.c_str(), c.readahead ? "true" : "false",
        static_cast<unsigned long long>(c.ops),
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.prefetch_issued),
        static_cast<unsigned long long>(c.prefetch_used),
        static_cast<unsigned long long>(c.physical_reads),
        c.foreground_stall_ms, i + 1 < scan_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"coalescing_cells\": [\n");
  for (size_t i = 0; i < coalesce_cells.size(); ++i) {
    const CoalesceCell& c = coalesce_cells[i];
    std::fprintf(
        f,
        "    {\"pool\": \"%s\", \"threads\": %llu, \"io_workers\": %llu, "
        "\"ops\": %llu, \"hits\": %llu, \"misses\": %llu, "
        "\"coalesced_reads\": %llu, \"coalescing_ratio\": %.4f, "
        "\"background_cleans\": %llu, \"physical_reads\": %llu, "
        "\"wall_seconds\": %.3f}%s\n",
        c.pool.c_str(), static_cast<unsigned long long>(c.threads),
        static_cast<unsigned long long>(c.workers),
        static_cast<unsigned long long>(c.ops),
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.coalesced_reads),
        c.coalescing_ratio,
        static_cast<unsigned long long>(c.background_cleans),
        static_cast<unsigned long long>(c.physical_reads), c.wall_seconds,
        i + 1 < coalesce_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"writebehind_cells\": [\n");
  for (size_t i = 0; i < wb_cells.size(); ++i) {
    const WriteBehindCell& c = wb_cells[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"threads\": %llu, \"io_workers\": %llu, "
        "\"ops\": %llu, \"hits\": %llu, \"misses\": %llu, "
        "\"dirty_writebacks\": %llu, \"writebehind_writes\": %llu, "
        "\"writebehind_readmits\": %llu, \"io_drops_flush\": %llu, "
        "\"io_drops_prefetch\": %llu, \"background_cleans\": %llu, "
        "\"fetch_p50_micros\": %.1f, \"fetch_p99_micros\": %.1f, "
        "\"wall_seconds\": %.3f, \"starvation_grants\": %llu, "
        "\"lanes\": [",
        c.mode.c_str(), static_cast<unsigned long long>(c.threads),
        static_cast<unsigned long long>(c.workers),
        static_cast<unsigned long long>(c.ops),
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.dirty_writebacks),
        static_cast<unsigned long long>(c.writebehind_writes),
        static_cast<unsigned long long>(c.writebehind_readmits),
        static_cast<unsigned long long>(c.io_drops_flush),
        static_cast<unsigned long long>(c.io_drops_prefetch),
        static_cast<unsigned long long>(c.background_cleans),
        c.fetch_p50_micros, c.fetch_p99_micros, c.wall_seconds,
        static_cast<unsigned long long>(c.dispatcher.starvation_grants));
    for (size_t l = 0; l < kIoClassCount; ++l) {
      const IoLaneStats& lane = c.dispatcher.lanes[l];
      std::fprintf(
          f,
          "{\"class\": \"%s\", \"accepted\": %llu, \"rejected\": %llu, "
          "\"executed\": %llu, \"queue_highwater\": %llu, "
          "\"wait_micros\": %llu, \"max_wait_micros\": %llu}%s",
          IoClassName(static_cast<IoClass>(l)),
          static_cast<unsigned long long>(lane.accepted),
          static_cast<unsigned long long>(lane.rejected),
          static_cast<unsigned long long>(lane.executed),
          static_cast<unsigned long long>(lane.queue_highwater),
          static_cast<unsigned long long>(lane.wait_micros),
          static_cast<unsigned long long>(lane.max_wait_micros),
          l + 1 < kIoClassCount ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < wb_cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"checks\": {\n"
               "    \"readahead_beats_sync\": %s,\n"
               "    \"prefetch_used_nonzero\": %s,\n"
               "    \"coalesced_nonzero\": %s,\n"
               "    \"background_cleans_nonzero\": %s,\n"
               "    \"writebehind_foreground_near_zero\": %s,\n"
               "    \"writebehind_p99_beats_sync\": %s,\n"
               "    \"accounting_exact\": %s\n  }\n}\n",
               readahead_ok ? "true" : "false",
               prefetch_used_ok ? "true" : "false",
               coalesce_ok ? "true" : "false", cleans_ok ? "true" : "false",
               wb_foreground_ok ? "true" : "false",
               wb_p99_ok ? "true" : "false",
               accounting_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace lruk

int main(int argc, char** argv) {
  using namespace lruk;

  const char* json_path = nullptr;
  bool quick = false;
  BenchProvenance provenance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (ParseProvenanceFlag(argc, argv, &i, &provenance)) {
      // consumed
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--git-sha <sha>] "
                   "[--build-type <type>] [--sanitizer <name>]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint64_t scan_pages = quick ? 2048 : 8192;
  const uint64_t hot_pages = 128;
  const uint64_t chunk = 32;
  const uint64_t ops_per_thread = quick ? 400 : 2500;
  const uint64_t wb_ops_per_thread = quick ? 600 : 3000;
  provenance.threads = 8;  // Maximum client threads across the sections.

  std::printf(
      "Async I/O: scans over a simulated %.0f ms disk (inline dispatcher, "
      "LRU-2 CRP=%llu, 512 frames), then 8-thread coalescing churn over a "
      "sleeping disk\n\n",
      kReadMicros / 1000.0, static_cast<unsigned long long>(kScanCrp));

  struct ScanSpec {
    const char* workload;
    const char* pool;
    uint64_t hot;
  };
  const std::vector<ScanSpec> scan_specs = {
      {"sequential-scan", "single-latch", 0},
      {"example-1.2-mix", "single-latch", hot_pages},
      {"sequential-scan", "sharded x4", 0},
  };

  std::vector<ScanCell> scan_cells;
  AsciiTable scan_table({"workload", "pool", "readahead", "misses",
                         "prefetch used", "physical reads", "stall (ms)"});
  bool readahead_ok = true;
  bool prefetch_used_ok = true;
  bool accounting_ok = true;
  for (const ScanSpec& spec : scan_specs) {
    ScanCell off = RunScanCell(spec.workload, spec.pool, false, scan_pages,
                               spec.hot, chunk);
    ScanCell on = RunScanCell(spec.workload, spec.pool, true, scan_pages,
                              spec.hot, chunk);
    for (const ScanCell* c : {&off, &on}) {
      scan_table.AddRow({c->workload, c->pool, c->readahead ? "on" : "off",
                         AsciiTable::Integer(c->misses),
                         AsciiTable::Integer(c->prefetch_used),
                         AsciiTable::Integer(c->physical_reads),
                         AsciiTable::Fixed(c->foreground_stall_ms, 1)});
      accounting_ok = accounting_ok && c->accounting_exact;
      scan_cells.push_back(*c);
    }
    if (on.foreground_stall_ms * 5 > off.foreground_stall_ms) {
      readahead_ok = false;
      std::printf("readahead win too small: %s/%s %.1f ms vs %.1f ms\n",
                  spec.workload, spec.pool, on.foreground_stall_ms,
                  off.foreground_stall_ms);
    }
    if (on.prefetch_used == 0) prefetch_used_ok = false;
  }
  scan_table.Print();

  std::printf("\n");
  std::vector<CoalesceCell> coalesce_cells;
  AsciiTable co_table({"pool", "misses", "coalesced", "ratio",
                       "physical reads", "bg cleans", "wall (s)"});
  bool coalesce_ok = true;
  bool cleans_ok = true;
  bool bounded_ok = true;
  for (const char* pool_kind : {"single-latch", "sharded x4"}) {
    CoalesceCell c = RunCoalesceCell(pool_kind, ops_per_thread);
    co_table.AddRow({c.pool, AsciiTable::Integer(c.misses),
                     AsciiTable::Integer(c.coalesced_reads),
                     AsciiTable::Fixed(c.coalescing_ratio, 3),
                     AsciiTable::Integer(c.physical_reads),
                     AsciiTable::Integer(c.background_cleans),
                     AsciiTable::Fixed(c.wall_seconds, 3)});
    accounting_ok = accounting_ok && c.accounting_exact;
    bounded_ok = bounded_ok && c.reads_bounded;
    if (c.coalesced_reads == 0) coalesce_ok = false;
    if (c.background_cleans == 0) cleans_ok = false;
    coalesce_cells.push_back(c);
  }
  co_table.Print();

  std::printf("\nwrite-behind: 6 threads, 70%% writes, write cost 5x read, "
              "paced below saturation (96 pages / 64 frames)\n");
  std::vector<WriteBehindCell> wb_cells;
  AsciiTable wb_table({"mode", "misses", "fg writes", "wb writes",
                       "readmits", "flush drops", "p50 (us)", "p99 (us)"});
  bool wb_foreground_ok = true;
  bool wb_p99_ok = true;
  double sync_p99 = 0.0;
  double wb_single_p99 = 0.0;
  for (const char* mode :
       {"sync", "flusher", "write-behind", "wb sharded x4"}) {
    WriteBehindCell c = RunWriteBehindCell(mode, wb_ops_per_thread);
    wb_table.AddRow({c.mode, AsciiTable::Integer(c.misses),
                     AsciiTable::Integer(c.dirty_writebacks),
                     AsciiTable::Integer(c.writebehind_writes),
                     AsciiTable::Integer(c.writebehind_readmits),
                     AsciiTable::Integer(c.io_drops_flush),
                     AsciiTable::Fixed(c.fetch_p50_micros, 1),
                     AsciiTable::Fixed(c.fetch_p99_micros, 1)});
    accounting_ok = accounting_ok && c.accounting_exact;
    if (c.mode == "sync") sync_p99 = c.fetch_p99_micros;
    if (c.mode == "write-behind") wb_single_p99 = c.fetch_p99_micros;
    bool is_wb = c.mode == "write-behind" || c.mode == "wb sharded x4";
    if (is_wb) {
      // Foreground (miss-path) victim writes must be <= 5% of all victim
      // writes: the Flush lane carries the rest.
      uint64_t total_victim_writes =
          c.dirty_writebacks + c.writebehind_writes;
      if (c.writebehind_writes == 0 ||
          c.dirty_writebacks * 20 > total_victim_writes) {
        wb_foreground_ok = false;
        std::printf("write-behind still writing in the foreground: %s "
                    "fg=%llu wb=%llu\n",
                    c.mode.c_str(),
                    static_cast<unsigned long long>(c.dirty_writebacks),
                    static_cast<unsigned long long>(c.writebehind_writes));
      }
    }
    wb_cells.push_back(c);
  }
  // Compare apples to apples: single-latch write-behind vs single-latch
  // sync (the sharded cell has 4x the latches and would win regardless).
  if (wb_single_p99 >= sync_p99) {
    wb_p99_ok = false;
    std::printf("write-behind p99 did not beat sync: %.1f us vs %.1f us\n",
                wb_single_p99, sync_p99);
  }
  wb_table.Print();

  std::printf("\nshape: readahead stalls >= 5x below the synchronous "
              "baseline in every scan pair: %s\n",
              readahead_ok ? "yes" : "NO");
  std::printf("shape: prefetched pages are consumed by demand fetches "
              "(prefetch_used > 0): %s\n",
              prefetch_used_ok ? "yes" : "NO");
  std::printf("shape: concurrent same-page misses coalesce "
              "(coalesced_reads > 0, physical reads <= misses): %s\n",
              coalesce_ok && bounded_ok ? "yes" : "NO");
  std::printf("shape: the background flusher cleans pages off the miss "
              "path (background_cleans > 0): %s\n",
              cleans_ok ? "yes" : "NO");
  std::printf("shape: write-behind keeps foreground victim writes <= 5%% "
              "of all victim writes: %s\n",
              wb_foreground_ok ? "yes" : "NO");
  std::printf("shape: write-behind client fetch p99 beats the sync "
              "baseline: %s\n",
              wb_p99_ok ? "yes" : "NO");
  std::printf("shape: hit+miss totals exactly equal ops in every cell: %s\n",
              accounting_ok ? "yes" : "NO");

  if (json_path != nullptr) {
    WriteJson(json_path, provenance, scan_cells, coalesce_cells, wb_cells,
              readahead_ok, prefetch_used_ok, coalesce_ok && bounded_ok,
              cleans_ok, wb_foreground_ok, wb_p99_ok, accounting_ok);
    std::printf("wrote %s\n", json_path);
  }
  return readahead_ok && prefetch_used_ok && coalesce_ok && bounded_ok &&
                 cleans_ok && wb_foreground_ok && wb_p99_ok && accounting_ok
             ? 0
             : 1;
}
