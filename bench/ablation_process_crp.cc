// Process-aware Time-Out Correlation (Section 2.1.1). On the multi-process
// transactional workload, one transaction's correlated references are
// spread ~num_processes ticks apart by interleaving, so the CRP must cover
// several times that gap. But a CRP that long also swallows *inter-process*
// re-references to hot pages — genuine, independent evidence of popularity
// (correlated-pair type 4) that the paper says should NOT be factored out.
//
// The per-process refinement ("each successive access by the same process
// within a time-out period is assumed to be correlated") keeps the burst
// collapse while letting a different process's touch open a new
// uncorrelated reference immediately. This bench sweeps the CRP with and
// without process awareness.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/transactional.h"

int main() {
  using namespace lruk;

  TransactionalOptions topt;
  topt.num_processes = 8;
  topt.num_pages = 10000;
  topt.seed = 19945;

  constexpr size_t kBuffer = 150;
  const std::vector<Timestamp> kCrps = {0, 8, 16, 32, 64, 128, 256, 512};

  std::printf("Process-aware CRP ablation: transactional workload "
              "(%u processes, 80-20 skew, txn mean %.0f pages, "
              "intra-txn reref %.0f%%), LRU-2, B=%zu\n\n",
              topt.num_processes, topt.mean_pages_per_transaction,
              100 * topt.intra_transaction_reref, kBuffer);

  AsciiTable table({"CRP", "global-CRP", "per-process-CRP", "delta"});

  double best_global = 0.0;
  double best_per_process = 0.0;
  for (Timestamp crp : kCrps) {
    SimOptions sim;
    sim.capacity = kBuffer;
    sim.warmup_refs = 40000;
    sim.measure_refs = 150000;
    sim.track_classes = false;

    TransactionalWorkload gen(topt);
    PolicyConfig global = PolicyConfig::LruK(2, crp);
    auto global_result = SimulatePolicy(global, gen, sim);
    if (!global_result.ok()) return 1;

    PolicyConfig per_process = PolicyConfig::LruK(2, crp);
    per_process.lru_k.per_process_correlation = true;
    auto pp_result = SimulatePolicy(per_process, gen, sim);
    if (!pp_result.ok()) return 1;

    double g = global_result->HitRatio();
    double pp = pp_result->HitRatio();
    best_global = std::max(best_global, g);
    best_per_process = std::max(best_per_process, pp);
    table.AddRow({AsciiTable::Integer(crp), AsciiTable::Fixed(g, 4),
                  AsciiTable::Fixed(pp, 4),
                  AsciiTable::Fixed(pp - g, 4)});
  }
  table.Print();

  std::printf("\nshape: the best per-process configuration is at least as "
              "good as the best global one (%.4f vs %.4f): %s\n",
              best_per_process, best_global,
              best_per_process >= best_global - 0.002 ? "yes" : "NO");
  std::printf("(at CRP=0 the two modes coincide; at large CRP the global "
              "mode discards type-4 inter-process evidence while the "
              "per-process mode keeps it)\n");
  return 0;
}
