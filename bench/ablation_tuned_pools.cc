// The paper's abstract: "LRU-K can approach the behavior of buffering
// algorithms in which page sets with known access frequencies are manually
// assigned to different buffer pools of specifically tuned sizes" — the
// Reiter Domain Separation / DBA pool-tuning alternative of Section 1.1.
//
// This bench builds that manually tuned baseline for the two-pool
// workload: the buffer is split into a dedicated pool-1 partition and a
// pool-2 partition, each running plain LRU on its own (independent)
// reference substream, and the DBA is given oracle powers — every split is
// tried and the best one reported. LRU-2, self-reliant and hint-free, is
// then compared against this best-tuned configuration.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/two_pool.h"
#include "workload/uniform_workload.h"

namespace {

// Steady-state LRU hit ratio of a dedicated partition of `capacity` pages
// serving uniform references over `pages` pages (measured, not the c/N
// closed form, to keep the comparison honest).
double PartitionHitRatio(size_t capacity, uint64_t pages, uint64_t seed) {
  using namespace lruk;
  if (capacity == 0) return 0.0;
  if (capacity >= pages) return 1.0;
  UniformOptions uopt;
  uopt.num_pages = pages;
  uopt.seed = seed;
  UniformWorkload gen(uopt);
  SimOptions sim;
  sim.capacity = capacity;
  sim.warmup_refs = 4 * pages;
  sim.measure_refs = 30 * pages;
  sim.track_classes = false;
  auto result = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  return result.ok() ? result->HitRatio() : 0.0;
}

}  // namespace

int main() {
  using namespace lruk;

  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  topt.seed = 19940;

  std::printf("Manual pool tuning vs self-reliant LRU-2 "
              "(two-pool workload, N1=%llu, N2=%llu)\n\n",
              static_cast<unsigned long long>(topt.n1),
              static_cast<unsigned long long>(topt.n2));

  AsciiTable table({"B", "LRU-2", "best-tuned-pools", "best-split(B1+B2)",
                    "LRU-2/tuned"});

  bool close_everywhere = true;
  for (size_t b : {60UL, 80UL, 100UL, 120UL, 160UL, 200UL, 300UL, 450UL}) {
    // Oracle DBA: every pool-1 frame is worth 1/(2*N1) = 0.005 hit ratio,
    // every pool-2 frame 1/(2*N2) = 0.00005, so the optimal split is
    // b1 = min(B, N1) with the remainder to pool 2; measure that split.
    size_t best_b1 = std::min<size_t>(b, topt.n1);
    double best = 0.5 * PartitionHitRatio(best_b1, topt.n1, 7) +
                  0.5 * PartitionHitRatio(b - best_b1, topt.n2, 8);

    TwoPoolWorkload gen(topt);
    SimOptions sim;
    sim.capacity = b;
    sim.warmup_refs = 10 * topt.n1;
    sim.measure_refs = 600 * topt.n1;
    sim.track_classes = false;
    auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
    if (!lru2.ok()) return 1;

    double ratio = lru2->HitRatio() / best;
    if (ratio < 0.90) close_everywhere = false;
    char split[32];
    std::snprintf(split, sizeof(split), "%zu+%zu", best_b1, b - best_b1);
    table.AddRow({AsciiTable::Integer(b),
                  AsciiTable::Fixed(lru2->HitRatio(), 3),
                  AsciiTable::Fixed(best, 3), split,
                  AsciiTable::Fixed(ratio, 3)});
  }

  table.Print();
  std::printf("\nshape: hint-free LRU-2 achieves >= 90%% of the "
              "oracle-tuned pool configuration at every B: %s\n",
              close_everywhere ? "yes" : "NO");
  std::printf("(and unlike the tuned pools, LRU-2 needs no DBA and adapts "
              "when the frequencies change — see ablation_adaptivity)\n");
  return 0;
}
