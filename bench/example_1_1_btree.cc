// Example 1.1 end-to-end: the actual B-tree scenario that motivates the
// paper. 20,000 customer records (2,000 bytes each, two per 4 KB page)
// reached through a clustered B-tree index packing 200 key entries per
// leaf — exactly 100 leaf pages plus a root. Random CUST-ID probes produce
// the alternating reference string I1, R1, I2, R2, ... of the paper.
//
// With 101 + 1 buffer pages, the paper argues the right policy keeps the
// root plus all 100 leaves resident (hit ratio approaching 0.5) while LRU
// fills half the buffer with record pages (hit ratio ~0.25 on index pages
// and near 0 on records). This bench runs the real stack — B+tree over the
// buffer pool over the simulated disk — and reports hit ratio and final
// buffer composition for LRU-1, LRU-2, LRU-3 and LFU.

#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

int main() {
  using namespace lruk;

  constexpr uint64_t kCustomers = 20000;
  constexpr uint64_t kRecordsPerPage = 2;  // 2000-byte records, 4KB pages.
  constexpr uint64_t kLeafEntries = 200;   // 20-byte index entries.
  constexpr size_t kBufferPages = 102;     // Root + 100 leaves + 1 working.
  constexpr int kProbes = 60000;
  constexpr int kWarmupProbes = 20000;

  std::printf("Example 1.1: B-tree customer lookups, %llu records, "
              "buffer = %zu pages\n\n",
              static_cast<unsigned long long>(kCustomers), kBufferPages);

  AsciiTable table({"policy", "hit-ratio", "index-pages-resident",
                    "record-pages-resident", "disk-reads"});

  std::vector<PolicyConfig> configs = {
      PolicyConfig::Lru(), PolicyConfig::LruK(2), PolicyConfig::LruK(3),
      PolicyConfig::Lfu()};

  double lru1_hit = 0.0;
  double lru2_hit = 0.0;
  uint64_t lru1_index_resident = 0;
  uint64_t lru2_index_resident = 0;

  for (const PolicyConfig& config : configs) {
    SimDiskManager disk;
    PolicyContext context;
    context.capacity = kBufferPages;
    auto policy = MakePolicy(config, context);
    if (!policy.ok()) {
      std::fprintf(stderr, "policy: %s\n", policy.status().ToString().c_str());
      return 1;
    }
    std::string name(policy.value()->Name());
    BufferPool pool(kBufferPages, &disk, std::move(*policy));

    // Lay out record pages, then build the clustered index over them.
    std::vector<PageId> record_pages;
    for (uint64_t i = 0; i < kCustomers / kRecordsPerPage; ++i) {
      auto page = pool.NewPage();
      if (!page.ok()) return 1;
      record_pages.push_back((*page)->id());
      if (!pool.UnpinPage((*page)->id(), true).ok()) return 1;
    }
    BTreeOptions options;
    options.leaf_capacity = kLeafEntries;
    BTree tree(&pool, options);
    for (uint64_t k = 0; k < kCustomers; ++k) {
      if (!tree.Insert(k, record_pages[k / kRecordsPerPage]).ok()) return 1;
    }
    auto leaves = tree.LeafPageIds();
    if (!leaves.ok()) return 1;
    std::unordered_set<PageId> index_pages(leaves->begin(), leaves->end());
    index_pages.insert(tree.RootPageId());

    // Probe phase: random key through the index, then the record page.
    RandomEngine rng(19934);
    pool.ResetStats();
    disk.ResetStats();
    uint64_t measured_hits = 0;
    uint64_t measured_refs = 0;
    uint64_t warmup_hits = 0;
    uint64_t warmup_refs = 0;
    for (int probe = 0; probe < kProbes; ++probe) {
      if (probe == kWarmupProbes) {
        warmup_hits = pool.stats().hits;
        warmup_refs = pool.stats().hits + pool.stats().misses;
      }
      uint64_t key = rng.NextBounded(kCustomers);
      auto record_page = tree.Get(key);
      if (!record_page.ok()) return 1;
      auto guard = PageGuard::Fetch(pool, *record_page);
      if (!guard.ok()) return 1;
    }
    measured_hits = pool.stats().hits - warmup_hits;
    measured_refs = pool.stats().hits + pool.stats().misses - warmup_refs;
    double hit_ratio =
        static_cast<double>(measured_hits) / static_cast<double>(measured_refs);

    size_t index_resident = 0;
    size_t record_resident = 0;
    for (PageId p = 0; p < disk.NumAllocatedPages() + 16; ++p) {
      if (!pool.IsResident(p)) continue;
      if (index_pages.contains(p)) {
        ++index_resident;
      } else {
        ++record_resident;
      }
    }

    if (name == "LRU") {
      lru1_hit = hit_ratio;
      lru1_index_resident = index_resident;
    }
    if (name == "LRU-2") {
      lru2_hit = hit_ratio;
      lru2_index_resident = index_resident;
    }

    table.AddRow({name, AsciiTable::Fixed(hit_ratio, 3),
                  AsciiTable::Integer(index_resident),
                  AsciiTable::Integer(record_resident),
                  AsciiTable::Integer(disk.stats().reads)});
  }

  table.Print();
  std::printf("\n(index pages in the tree: 101 of %zu buffer slots; the "
              "probe stream references root+leaf+record per lookup, so the "
              "root hit is ~1/3 of references for free and full index "
              "residency yields ~2/3)\n",
              kBufferPages);
  std::printf("\nshape: LRU-2 holds ~all index pages (%llu vs LRU's %llu): "
              "%s\n",
              static_cast<unsigned long long>(lru2_index_resident),
              static_cast<unsigned long long>(lru1_index_resident),
              lru2_index_resident > lru1_index_resident + 20 ? "yes" : "NO");
  std::printf("shape: LRU-2 hit ratio beats LRU-1 (%.3f vs %.3f): %s\n",
              lru2_hit, lru1_hit, lru2_hit > lru1_hit + 0.05 ? "yes" : "NO");
  return 0;
}
