// Parameter-sensitivity ablation for Section 1.2's claim about
// counter-based aging schemes: "This category of algorithms, which
// includes, for example, GCLOCK and variants of LRD, depends critically on
// a careful choice of various workload-dependent parameters ... The LRU-K
// algorithm, on the other hand, does not require any manual tuning of this
// kind."
//
// We sweep GCLOCK's counter knobs and LRD-V2's aging knobs across two
// workloads with different characters (stationary two-pool vs moving
// hotspot) and report each configuration's hit ratio, the spread between
// the best and worst tuning, and — the paper's point — that the best knob
// settings *differ across workloads*, while parameterless LRU-2 lands near
// the per-workload best without any knobs at all.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/moving_hotspot.h"
#include "workload/two_pool.h"

namespace {

struct Config {
  std::string label;
  lruk::PolicyConfig config;
};

std::vector<Config> TunedConfigs() {
  using namespace lruk;
  std::vector<Config> configs;
  for (uint32_t max_count : {1u, 4u, 16u, 64u}) {
    for (uint32_t increment : {1u, 4u}) {
      PolicyConfig c = PolicyConfig::Of(PolicyKind::kGClock);
      c.gclock.max_count = max_count;
      c.gclock.reference_increment = increment;
      configs.push_back({"GCLOCK(max=" + std::to_string(max_count) +
                             ",inc=" + std::to_string(increment) + ")",
                         c});
    }
  }
  for (uint64_t interval : {1000u, 10000u, 100000u}) {
    for (uint64_t divisor : {2u, 8u}) {
      PolicyConfig c = PolicyConfig::Of(PolicyKind::kLrd);
      c.lrd.aging_interval = interval;
      c.lrd.aging_divisor = divisor;
      configs.push_back({"LRD-V2(T=" + std::to_string(interval) +
                             ",div=" + std::to_string(divisor) + ")",
                         c});
    }
  }
  return configs;
}

}  // namespace

int main() {
  using namespace lruk;

  constexpr size_t kBuffer = 150;
  SimOptions sim;
  sim.capacity = kBuffer;
  sim.warmup_refs = 30000;
  sim.measure_refs = 100000;
  sim.track_classes = false;

  std::vector<Config> tuned = TunedConfigs();

  std::printf("Tuning-sensitivity ablation (Section 1.2's GCLOCK/LRD "
              "claim), B=%zu\n\n", kBuffer);
  AsciiTable table({"config", "two-pool", "moving-hotspot"});

  auto run = [&](const PolicyConfig& config, int workload) -> double {
    if (workload == 0) {
      TwoPoolOptions topt;
      topt.n1 = 100;
      topt.n2 = 10000;
      topt.seed = 19950;
      TwoPoolWorkload gen(topt);
      auto result = SimulatePolicy(config, gen, sim);
      return result.ok() ? result->HitRatio() : -1.0;
    }
    MovingHotspotOptions mopt;
    mopt.num_pages = 10000;
    mopt.hot_pages = 100;
    mopt.hot_probability = 0.9;
    mopt.epoch_length = 8000;
    mopt.shift = 2000;
    mopt.seed = 19951;
    MovingHotspotWorkload gen(mopt);
    auto result = SimulatePolicy(config, gen, sim);
    return result.ok() ? result->HitRatio() : -1.0;
  };

  std::vector<double> two_pool_ratios;
  std::vector<double> hotspot_ratios;
  std::string best_two_pool_label;
  std::string best_hotspot_label;
  for (const Config& c : tuned) {
    double a = run(c.config, 0);
    double b = run(c.config, 1);
    if (a < 0 || b < 0) return 1;
    if (two_pool_ratios.empty() ||
        a > *std::max_element(two_pool_ratios.begin(),
                              two_pool_ratios.end())) {
      best_two_pool_label = c.label;
    }
    if (hotspot_ratios.empty() ||
        b > *std::max_element(hotspot_ratios.begin(),
                              hotspot_ratios.end())) {
      best_hotspot_label = c.label;
    }
    two_pool_ratios.push_back(a);
    hotspot_ratios.push_back(b);
    table.AddRow({c.label, AsciiTable::Fixed(a, 3),
                  AsciiTable::Fixed(b, 3)});
  }
  double lru2_two_pool = run(PolicyConfig::LruK(2), 0);
  double lru2_hotspot = run(PolicyConfig::LruK(2), 1);
  table.AddRow({"LRU-2 (no knobs)", AsciiTable::Fixed(lru2_two_pool, 3),
                AsciiTable::Fixed(lru2_hotspot, 3)});
  table.Print();

  auto spread = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) -
           *std::min_element(v.begin(), v.end());
  };
  double s1 = spread(two_pool_ratios);
  double s2 = spread(hotspot_ratios);
  double best1 = *std::max_element(two_pool_ratios.begin(),
                                   two_pool_ratios.end());
  double best2 = *std::max_element(hotspot_ratios.begin(),
                                   hotspot_ratios.end());

  std::printf("\ntuning spread (best - worst): two-pool %.3f, "
              "moving-hotspot %.3f\n", s1, s2);
  std::printf("best tuned config: two-pool -> %s, moving-hotspot -> %s\n",
              best_two_pool_label.c_str(), best_hotspot_label.c_str());
  std::printf("\nshape: knob choice moves the tuned policies by >= 0.05 "
              "hit ratio on at least one workload: %s\n",
              (s1 >= 0.05 || s2 >= 0.05) ? "yes" : "NO");
  std::printf("shape: knob-free LRU-2 is within 0.03 of the best tuned "
              "config on BOTH workloads (%.3f/%.3f vs %.3f/%.3f): %s\n",
              lru2_two_pool, lru2_hotspot, best1, best2,
              (lru2_two_pool >= best1 - 0.03 && lru2_hotspot >= best2 - 0.03)
                  ? "yes"
                  : "NO");
  return 0;
}
