// Statistical replication of the headline Table 4.1 cells: every other
// bench runs one seed (deterministically); this one re-runs the key rows
// with 7 independent workload seeds and reports mean +- 95% CI, verifying
// that the reproduction does not hinge on a lucky random stream.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  struct Row {
    size_t b;
    double paper_lru1;
    double paper_lru2;
  };
  const std::vector<Row> kRows = {
      {60, 0.14, 0.291}, {100, 0.22, 0.459}, {140, 0.29, 0.502}};
  const std::vector<uint64_t> kSeeds = {11, 23, 47, 101, 223, 467, 997};

  std::printf("Replication check: Table 4.1 rows across %zu seeds "
              "(mean +- 95%% CI)\n\n",
              kSeeds.size());

  AsciiTable table({"B", "policy", "mean", "+-95%CI", "min", "max",
                    "paper", "paper-in-2xCI"});
  bool all_consistent = true;

  for (const Row& row : kRows) {
    for (int policy_index = 0; policy_index < 2; ++policy_index) {
      PolicyConfig config =
          policy_index == 0 ? PolicyConfig::Lru() : PolicyConfig::LruK(2);
      double paper = policy_index == 0 ? row.paper_lru1 : row.paper_lru2;

      RunningStats stats;
      for (uint64_t seed : kSeeds) {
        TwoPoolOptions topt;
        topt.n1 = 100;
        topt.n2 = 10000;
        topt.seed = seed;
        TwoPoolWorkload gen(topt);
        SimOptions sim;
        sim.capacity = row.b;
        sim.warmup_refs = 1000;
        // The paper's own 30*N1 measurement window, so the CI reflects the
        // paper's methodology.
        sim.measure_refs = 30 * topt.n1;
        sim.track_classes = false;
        auto result = SimulatePolicy(config, gen, sim);
        if (!result.ok()) return 1;
        stats.Add(result->HitRatio());
      }

      double ci = stats.ConfidenceHalfWidth95();
      // Paper agreement within a generous 2x CI + rounding slack (the
      // paper reports 2-3 significant digits).
      bool consistent =
          std::abs(stats.Mean() - paper) <= 2.0 * ci + 0.006;
      all_consistent = all_consistent && consistent;
      table.AddRow({AsciiTable::Integer(row.b),
                    policy_index == 0 ? "LRU-1" : "LRU-2",
                    AsciiTable::Fixed(stats.Mean(), 4),
                    AsciiTable::Fixed(ci, 4),
                    AsciiTable::Fixed(stats.Min(), 4),
                    AsciiTable::Fixed(stats.Max(), 4),
                    AsciiTable::Fixed(paper, 3),
                    consistent ? "yes" : "NO"});
    }
  }
  table.Print();
  std::printf("\nshape: every paper value is statistically consistent with "
              "the replicated mean: %s\n",
              all_consistent ? "yes" : "NO");
  return 0;
}
