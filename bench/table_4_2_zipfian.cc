// Reproduces Table 4.2 of the paper: random accesses to N = 1000 pages
// with a Zipfian 80-20 skew (alpha = 0.8, beta = 0.2), comparing LRU-1,
// LRU-2 and A0, plus the equi-effective buffer ratio B(1)/B(2).

#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/equi_effective.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "workload/zipfian_workload.h"

int main() {
  using namespace lruk;

  ZipfianOptions zopt;
  zopt.num_pages = 1000;
  zopt.alpha = 0.8;
  zopt.beta = 0.2;
  zopt.seed = 19932;
  ZipfianWorkload gen(zopt);

  const std::vector<size_t> capacities = {40,  60,  80,  100, 120, 140,
                                          160, 180, 200, 300, 500};
  const double paper_lru1[] = {0.53, 0.57, 0.61, 0.63, 0.64, 0.67,
                               0.70, 0.71, 0.72, 0.78, 0.87};
  const double paper_lru2[] = {0.61, 0.65, 0.67, 0.68, 0.71, 0.72,
                               0.74, 0.73, 0.76, 0.80, 0.87};
  const double paper_a0[] = {0.640, 0.677, 0.705, 0.727, 0.745, 0.761,
                             0.776, 0.788, 0.825, 0.846, 0.908};
  const double paper_ratio[] = {2.0, 2.2, 2.1, 1.6, 1.5, 1.4,
                                1.5, 1.2, 1.3, 1.1, 1.0};

  SweepSpec spec;
  spec.capacities = capacities;
  spec.policies = {PolicyConfig::Lru(), PolicyConfig::LruK(2),
                   PolicyConfig::A0()};
  spec.sim.warmup_refs = 20000;
  spec.sim.measure_refs = 100000;
  spec.sim.track_classes = false;

  std::printf("Table 4.2 reproduction: Zipfian 80-20 access, N=%llu\n",
              static_cast<unsigned long long>(zopt.num_pages));
  std::printf("(paper values in parentheses)\n\n");

  auto sweep = RunSweep(spec, gen);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }

  // LRU-1 hit-ratio curve for B(1) inversion (out to ~2.5x max B).
  std::vector<size_t> curve_caps;
  for (size_t b = 20; b <= 1000; b += 20) curve_caps.push_back(b);
  SweepSpec curve_spec;
  curve_spec.capacities = curve_caps;
  curve_spec.policies = {PolicyConfig::Lru()};
  curve_spec.sim = spec.sim;
  auto curve = RunSweep(curve_spec, gen);
  if (!curve.ok()) {
    std::fprintf(stderr, "curve sweep failed: %s\n",
                 curve.status().ToString().c_str());
    return 1;
  }
  std::vector<double> curve_ratios;
  for (size_t i = 0; i < curve_caps.size(); ++i) {
    curve_ratios.push_back(curve->HitRatio(i, 0));
  }

  AsciiTable table({"B", "LRU-1", "(paper)", "LRU-2", "(paper)", "A0",
                    "(paper)", "B(1)/B(2)", "(paper)"});
  for (size_t i = 0; i < capacities.size(); ++i) {
    double lru2_ratio = sweep->HitRatio(i, 1);
    auto b1 = InterpolateCapacityForHitRatio(curve_caps, curve_ratios,
                                             lru2_ratio);
    table.AddRow({AsciiTable::Integer(capacities[i]),
                  AsciiTable::Fixed(sweep->HitRatio(i, 0), 2),
                  AsciiTable::Fixed(paper_lru1[i], 2),
                  AsciiTable::Fixed(lru2_ratio, 2),
                  AsciiTable::Fixed(paper_lru2[i], 2),
                  AsciiTable::Fixed(sweep->HitRatio(i, 2), 3),
                  AsciiTable::Fixed(paper_a0[i], 3),
                  b1 ? AsciiTable::Fixed(
                           *b1 / static_cast<double>(capacities[i]), 1)
                     : ">max",
                  AsciiTable::Fixed(paper_ratio[i], 1)});
  }
  table.Print();
  table.MaybeWriteCsvFromEnv("table_4_2");

  bool ordering = true;
  for (size_t i = 0; i < capacities.size(); ++i) {
    // The paper's Table 4.2 shape: LRU-1 <= LRU-2 <= A0 (within noise) and
    // the LRU-2 advantage shrinks as B grows.
    if (sweep->HitRatio(i, 0) > sweep->HitRatio(i, 1) + 0.01 ||
        sweep->HitRatio(i, 1) > sweep->HitRatio(i, 2) + 0.01) {
      ordering = false;
    }
  }
  double gap_small_b = sweep->HitRatio(0, 1) - sweep->HitRatio(0, 0);
  double gap_large_b = sweep->HitRatio(capacities.size() - 1, 1) -
                       sweep->HitRatio(capacities.size() - 1, 0);
  std::printf("\nshape: LRU-1 <= LRU-2 <= A0 at every B: %s\n",
              ordering ? "yes" : "NO");
  std::printf("shape: LRU-2 advantage shrinks with B (%.3f at B=40 vs "
              "%.3f at B=500): %s\n",
              gap_small_b, gap_large_b,
              gap_small_b > gap_large_b ? "yes" : "NO");
  return 0;
}
