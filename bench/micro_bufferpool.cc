// Buffer-pool throughput microbenchmark: fetch/unpin cycles against the
// simulated disk under each policy, at a skewed access pattern where ~30%
// of fetches miss. Complements micro_policy_overhead (pure policy cost) by
// measuring the full manager path: page table, frame management, policy
// callbacks, and dirty write-back.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "core/policy_factory.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr size_t kFrames = 256;
constexpr uint64_t kDiskPages = 4096;

void RunPool(benchmark::State& state, const char* policy_name,
             double write_fraction) {
  SimDiskOptions disk_options;
  disk_options.read_micros = 0.0;  // Measure manager cost, not fake I/O.
  disk_options.write_micros = 0.0;
  SimDiskManager disk;

  PolicyContext context;
  context.capacity = kFrames;
  auto config = ParsePolicyName(policy_name);
  auto policy = MakePolicy(*config, context);
  if (!policy.ok()) {
    state.SkipWithError(policy.status().ToString().c_str());
    return;
  }
  BufferPool pool(kFrames, &disk, std::move(*policy));

  // Allocate the database.
  std::vector<PageId> pages;
  pages.reserve(kDiskPages);
  for (uint64_t i = 0; i < kDiskPages; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) {
      state.SkipWithError("allocation failed");
      return;
    }
    pages.push_back((*page)->id());
    (void)pool.UnpinPage((*page)->id(), false);
  }

  RecursiveSkewDistribution dist(0.8, 0.2, kDiskPages);
  RandomEngine rng(4242);

  for (auto _ : state) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(write_fraction);
    auto page = pool.FetchPage(
        p, write ? AccessType::kWrite : AccessType::kRead);
    if (!page.ok()) {
      state.SkipWithError("fetch failed");
      return;
    }
    benchmark::DoNotOptimize((*page)->Data()[0]);
    (void)pool.UnpinPage(p, false);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_ratio"] = pool.stats().HitRatio();
}

void BM_PoolLru(benchmark::State& s) { RunPool(s, "LRU", 0.0); }
void BM_PoolLru2(benchmark::State& s) { RunPool(s, "LRU-2", 0.0); }
void BM_PoolLru2Writes(benchmark::State& s) { RunPool(s, "LRU-2", 0.3); }
void BM_PoolTwoQ(benchmark::State& s) { RunPool(s, "2Q", 0.0); }
void BM_PoolArc(benchmark::State& s) { RunPool(s, "ARC", 0.0); }
void BM_PoolClock(benchmark::State& s) { RunPool(s, "CLOCK", 0.0); }

BENCHMARK(BM_PoolLru);
BENCHMARK(BM_PoolLru2);
BENCHMARK(BM_PoolLru2Writes);
BENCHMARK(BM_PoolTwoQ);
BENCHMARK(BM_PoolArc);
BENCHMARK(BM_PoolClock);

}  // namespace
}  // namespace lruk

BENCHMARK_MAIN();
