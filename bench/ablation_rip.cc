// Retained Information Period ablation (Section 2.1.2). Two workloads:
//
//  1. Metronome: page 0 recurs every 32 references inside a stream of
//     one-shot pages, with a 16-page buffer — the Section 5 scenario where
//     "a page referenced with metronome-like regularity at intervals just
//     above its residence period" is only ever recognized if history
//     outlives residence. The hit count is 0 until the RIP covers the
//     metronome period.
//
//  2. Two-pool: the full tradeoff curve, including a subtle second-order
//     effect: retained history also retains *noise*. About 2.5% of cold
//     faults are coincidentally re-referenced within a few hundred
//     references; with a long RIP these lucky pairs look exactly like hot
//     pages (small b_t(p,2)) and squat in churn slots, occasionally
//     displacing a genuinely hot page whose recent gap was unluckily
//     long. On this workload the effect costs ~1.5% hit ratio at RIP=inf
//     versus RIP=1 — while on the metronome workload of part (a) a short
//     RIP costs *all* the hits. Sizing the RIP (the paper suggests ~2x
//     the Five Minute Rule break-even) is exactly this balance, plus the
//     history-table memory reported in the last column (the paper's open
//     question about history-block space).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/trace.h"
#include "workload/two_pool.h"

namespace {

// Builds the metronome trace: page 0 every `period`, fresh pages between.
std::vector<lruk::PageRef> MetronomeTrace(uint64_t period, uint64_t total) {
  std::vector<lruk::PageRef> refs;
  refs.reserve(total);
  lruk::PageId fresh = 1;
  for (uint64_t t = 0; t < total; ++t) {
    if (t % period == 0) {
      refs.push_back({0, lruk::AccessType::kRead});
    } else {
      refs.push_back({fresh++, lruk::AccessType::kRead});
    }
  }
  return refs;
}

}  // namespace

int main() {
  using namespace lruk;

  const std::vector<Timestamp> kRips = {1,   16,  33,  64,   128,
                                        256, 512, 1024, kInfinitePeriod};
  auto rip_label = [](Timestamp rip) {
    return rip == kInfinitePeriod ? std::string("inf")
                                  : AsciiTable::Integer(rip);
  };

  // --- Metronome workload ---
  constexpr uint64_t kPeriod = 32;
  constexpr uint64_t kTotal = 6400;
  std::printf("RIP ablation (a): metronome page every %llu refs, one-shot "
              "filler, B=16, LRU-2\n\n",
              static_cast<unsigned long long>(kPeriod));
  AsciiTable metro({"RIP", "metronome-hits", "history-blocks"});
  for (Timestamp rip : kRips) {
    TraceWorkload gen(MetronomeTrace(kPeriod, kTotal));
    PolicyConfig config = PolicyConfig::LruK(2, 0, rip);
    PolicyContext context;
    auto policy = MakePolicy(config, context);
    if (!policy.ok()) return 1;
    auto* lru_k = static_cast<LruKPolicy*>(policy->get());
    SimOptions sim;
    sim.capacity = 16;
    sim.warmup_refs = 0;
    sim.measure_refs = kTotal;
    sim.track_classes = false;
    SimResult result = RunSimulation(**policy, gen, sim);
    lru_k->PurgeHistory();
    metro.AddRow({rip_label(rip), AsciiTable::Integer(result.hits),
                  AsciiTable::Integer(lru_k->HistorySize())});
  }
  metro.Print();
  std::printf("\n(hits jump once RIP >= %llu, the metronome period; "
              "history size is the memory the RIP buys back)\n\n",
              static_cast<unsigned long long>(kPeriod + 1));

  // --- Two-pool workload ---
  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  topt.seed = 19939;
  std::printf("RIP ablation (b): two-pool N1=100 N2=10000 (hot "
              "interarrival ~200), B=110, LRU-2\n\n");
  AsciiTable pool({"RIP", "hit-ratio", "history-blocks", "history-KiB"});
  std::vector<double> ratios;
  for (Timestamp rip : kRips) {
    TwoPoolWorkload gen(topt);
    PolicyConfig config = PolicyConfig::LruK(2, 0, rip);
    auto policy = MakePolicy(config, PolicyContext{});
    if (!policy.ok()) return 1;
    auto* lru_k = static_cast<LruKPolicy*>(policy->get());
    SimOptions sim;
    sim.capacity = 110;
    sim.warmup_refs = 2000;
    sim.measure_refs = 60000;
    sim.track_classes = false;
    SimResult result = RunSimulation(**policy, gen, sim);
    lru_k->PurgeHistory();
    ratios.push_back(result.HitRatio());
    pool.AddRow({rip_label(rip), AsciiTable::Fixed(result.HitRatio(), 3),
                 AsciiTable::Integer(lru_k->HistorySize()),
                 AsciiTable::Integer(lru_k->HistoryMemoryBytes() / 1024)});
  }
  pool.Print();
  double lo = *std::min_element(ratios.begin(), ratios.end());
  double hi = *std::max_element(ratios.begin(), ratios.end());
  std::printf("\nshape: on this stationary workload the RIP moves the hit "
              "ratio by only %.3f (%.3f..%.3f) while history memory spans "
              "110 -> ~9700 blocks: %s\n",
              hi - lo, lo, hi, hi - lo < 0.05 ? "yes" : "NO");
  std::printf("note: the small *decline* toward RIP=inf is retained noise "
              "(see header); the paper's guideline of ~2x the break-even "
              "interarrival (~RIP 400 here) keeps the metronome benefit "
              "of part (a) without most of the memory cost.\n");
  return 0;
}
