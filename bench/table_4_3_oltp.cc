// Reproduces Table 4.3 of the paper: the OLTP trace experiment. The
// original input was a one-hour production trace of a bank's CODASYL
// database (~470,000 references, 20 GB); it is not available, so this
// bench drives the SyntheticOltpWorkload, which matches the statistics the
// paper reports about the trace (see DESIGN.md's substitution table):
// 40% of references to 3% of pages, 90% to 65%, with sequential-scan and
// navigational reference runs mixed into the random probes.
//
// Absolute hit ratios therefore differ from the paper; the claims under
// test are the *shape*: LRU-2 > LFU > LRU-1 at small B, a B(1)/B(2)
// around 2-4 at small B, and convergence of all three at large B.

#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "sim/equi_effective.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "workload/synthetic_oltp.h"

int main() {
  using namespace lruk;

  SyntheticOltpOptions oopt;
  oopt.num_pages = 25000;
  oopt.seed = 19933;
  SyntheticOltpWorkload gen(oopt);

  const std::vector<size_t> capacities = {100, 200, 300, 400, 500,
                                          600, 800, 1000, 1200, 1400,
                                          1600, 2000, 3000, 5000};
  const double paper_lru1[] = {0.005, 0.01, 0.02, 0.06, 0.09, 0.13, 0.18,
                               0.22, 0.24, 0.26, 0.29, 0.31, 0.38, 0.46};
  const double paper_lru2[] = {0.07, 0.15, 0.20, 0.23, 0.24, 0.25, 0.28,
                               0.29, 0.31, 0.33, 0.34, 0.36, 0.40, 0.47};
  const double paper_lfu[] = {0.07, 0.11, 0.15, 0.17, 0.19, 0.20, 0.23,
                              0.25, 0.27, 0.30, 0.31, 0.33, 0.39, 0.44};
  const double paper_ratio[] = {4.5, 3.25, 3.0, 2.75, 2.4, 2.16, 1.9,
                                1.6, 1.66, 1.5, 1.5, 1.3, 1.1, 1.05};

  SweepSpec spec;
  spec.capacities = capacities;
  spec.policies = {PolicyConfig::Lru(), PolicyConfig::LruK(2),
                   PolicyConfig::Lfu()};
  // ~470k references, matching the trace length, first 70k as warmup.
  spec.sim.warmup_refs = 70000;
  spec.sim.measure_refs = 400000;
  spec.sim.track_classes = false;

  std::printf("Table 4.3 reproduction: synthetic OLTP trace "
              "(substitute for the bank trace), %llu pages, 470k refs\n",
              static_cast<unsigned long long>(oopt.num_pages));
  std::printf("(paper values in parentheses)\n\n");

  auto sweep = RunSweep(spec, gen);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }

  // LRU-1 curve for B(1) inversion.
  std::vector<size_t> curve_caps = {100,  200,  300,  400,  500,  600,
                                    800,  1000, 1200, 1400, 1600, 2000,
                                    2600, 3400, 4200, 5000, 6500, 8000};
  SweepSpec curve_spec;
  curve_spec.capacities = curve_caps;
  curve_spec.policies = {PolicyConfig::Lru()};
  curve_spec.sim = spec.sim;
  auto curve = RunSweep(curve_spec, gen);
  if (!curve.ok()) {
    std::fprintf(stderr, "curve sweep failed: %s\n",
                 curve.status().ToString().c_str());
    return 1;
  }
  std::vector<double> curve_ratios;
  for (size_t i = 0; i < curve_caps.size(); ++i) {
    curve_ratios.push_back(curve->HitRatio(i, 0));
  }

  AsciiTable table({"B", "LRU-1", "(paper)", "LRU-2", "(paper)", "LFU",
                    "(paper)", "B(1)/B(2)", "(paper)"});
  for (size_t i = 0; i < capacities.size(); ++i) {
    double lru2_ratio = sweep->HitRatio(i, 1);
    auto b1 = InterpolateCapacityForHitRatio(curve_caps, curve_ratios,
                                             lru2_ratio);
    table.AddRow({AsciiTable::Integer(capacities[i]),
                  AsciiTable::Fixed(sweep->HitRatio(i, 0), 3),
                  AsciiTable::Fixed(paper_lru1[i], 3),
                  AsciiTable::Fixed(lru2_ratio, 2),
                  AsciiTable::Fixed(paper_lru2[i], 2),
                  AsciiTable::Fixed(sweep->HitRatio(i, 2), 2),
                  AsciiTable::Fixed(paper_lfu[i], 2),
                  b1 ? AsciiTable::Fixed(
                           *b1 / static_cast<double>(capacities[i]), 2)
                     : ">max",
                  AsciiTable::Fixed(paper_ratio[i], 2)});
  }
  table.Print();
  table.MaybeWriteCsvFromEnv("table_4_3");

  // Shape checks, per the paper's Section 4.3 reading.
  size_t small_rows = 6;  // B <= 600.
  bool lru2_beats_both_small = true;
  for (size_t i = 0; i < small_rows; ++i) {
    if (sweep->HitRatio(i, 1) <= sweep->HitRatio(i, 0) ||
        sweep->HitRatio(i, 1) < sweep->HitRatio(i, 2) - 0.01) {
      lru2_beats_both_small = false;
    }
  }
  size_t last = capacities.size() - 1;
  double spread_large = sweep->HitRatio(last, 1) - sweep->HitRatio(last, 0);
  std::printf("\nshape: LRU-2 >= LFU > LRU-1 at B <= 600: %s\n",
              lru2_beats_both_small ? "yes" : "NO");
  std::printf("shape: policies converge at B = 5000 (LRU-2 minus LRU-1 = "
              "%.3f): %s\n",
              spread_large, spread_large < 0.05 ? "yes" : "NO");
  return 0;
}
