// Correlated Reference Period ablation (Section 2.1.1). The workload is
// the two-pool stream with intra-transaction bursts injected: half the
// base references expand into back-to-back bursts of 2-4 references to the
// same page. Without a CRP those bursts make cold record pages look hot
// (interarrival ~1) and they squat in the buffer; with a CRP covering the
// burst width, each burst collapses into one logical reference.
//
// The sweep also shows the cost of overshooting: a CRP much larger than
// the hot pages' true interarrival delays their recognition and protects
// recently-faulted junk from eviction (the eligibility rule), so the curve
// should rise from CRP=0, plateau, and eventually fall.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/correlated.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  constexpr size_t kBuffer = 96;
  const std::vector<Timestamp> kCrps = {0, 1, 2, 4, 8, 16, 64, 256, 1024};

  std::printf("CRP ablation: two-pool (64 hot / 20000 cold) with injected "
              "correlated bursts (p=0.5, length 2-4), LRU-2, B=%zu\n\n",
              kBuffer);

  AsciiTable table({"CRP", "hit-ratio", "fallback-evictions"});

  auto make_gen = [] {
    TwoPoolOptions topt;
    topt.n1 = 64;
    topt.n2 = 20000;
    topt.seed = 19937;
    auto base = std::make_unique<TwoPoolWorkload>(topt);
    CorrelatedOptions copt;
    copt.burst_probability = 0.5;
    copt.max_burst_length = 4;
    copt.seed = 19938;
    return std::make_unique<CorrelatedWorkload>(std::move(base), copt);
  };

  std::vector<double> ratios;
  for (Timestamp crp : kCrps) {
    auto gen = make_gen();
    PolicyConfig config = PolicyConfig::LruK(2, crp);
    PolicyContext context;
    context.capacity = kBuffer;
    auto policy = MakePolicy(config, context);
    if (!policy.ok()) return 1;
    auto* lru_k = static_cast<LruKPolicy*>(policy->get());

    SimOptions sim;
    sim.capacity = kBuffer;
    sim.warmup_refs = 30000;
    sim.measure_refs = 120000;
    sim.track_classes = false;
    SimResult result = RunSimulation(**policy, *gen, sim);
    ratios.push_back(result.HitRatio());
    table.AddRow({AsciiTable::Integer(crp),
                  AsciiTable::Fixed(result.HitRatio(), 3),
                  AsciiTable::Integer(lru_k->fallback_evictions())});
  }
  table.Print();

  double at_zero = ratios[0];
  double best = *std::max_element(ratios.begin(), ratios.end());
  double at_huge = ratios.back();
  std::printf("\nshape: a burst-covering CRP beats CRP=0 (best %.3f vs "
              "%.3f): %s\n",
              best, at_zero, best > at_zero + 0.01 ? "yes" : "NO");
  std::printf("shape: an enormous CRP gives back some of the gain "
              "(%.3f at CRP=1024 vs best %.3f): %s\n",
              at_huge, best, at_huge <= best ? "yes" : "NO");
  return 0;
}
