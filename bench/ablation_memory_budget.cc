// Frames vs. history blocks under one memory budget — the experiment the
// paper leaves as future work (Section 5): "It is an open issue how much
// space we should set aside for history control blocks of non-resident
// pages. ... a better approach would be to turn buffer frames into history
// control blocks dynamically, and vice versa."
//
// Workload: 64 metronome pages each re-referenced every 512 references
// (1/8 of traffic), the rest a stream of one-shot pages. The period
// exceeds any achievable residence time, so a metronome page is recognized
// ONLY via retained history — and its history block must survive ~512
// references of one-shot churn to be there at the refault. Frames beyond
// the 64 metronome pages are nearly worthless; history blocks beyond the
// survival horizon are worthless too. Under a fixed budget the optimum is
// interior: trade just enough frames for just enough history.
//
// The sweep converts spare frames to history blocks at the measured
// block-per-page rate and reports the metronome hit count per split.

#include <cstdio>
#include <vector>

#include "core/lru_k.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/trace.h"

namespace {

constexpr uint64_t kMetronomePages = 64;
constexpr uint64_t kPeriod = 512;  // Refs between a page's visits.
constexpr uint64_t kTotalRefs = 200000;
constexpr size_t kBudgetPages = 96;  // Total memory in page-equivalents.

// One metronome page every kPeriod / kMetronomePages references, one-shot
// filler pages in between.
std::vector<lruk::PageRef> MetronomeMixTrace() {
  std::vector<lruk::PageRef> refs;
  refs.reserve(kTotalRefs);
  lruk::PageId filler = kMetronomePages;
  uint64_t stride = kPeriod / kMetronomePages;  // 8.
  for (uint64_t t = 0; t < kTotalRefs; ++t) {
    if (t % stride == 0) {
      refs.push_back({(t / stride) % kMetronomePages,
                      lruk::AccessType::kRead, 0});
    } else {
      refs.push_back({filler++, lruk::AccessType::kRead, 0});
    }
  }
  return refs;
}

}  // namespace

int main() {
  using namespace lruk;

  // Measure the history-block unit cost so the budget conversion is honest.
  size_t bytes_per_block;
  {
    LruKOptions probe_options;
    probe_options.k = 2;
    LruKPolicy probe(probe_options);
    probe.Admit(0, AccessType::kRead);
    bytes_per_block = probe.HistoryMemoryBytes();
  }
  size_t blocks_per_page = 4096 / bytes_per_block;

  std::printf("Memory budget ablation: %zu page-equivalents total; "
              "history blocks cost %zu bytes (%zu per page).\n",
              kBudgetPages, bytes_per_block, blocks_per_page);
  std::printf("Workload: %llu metronome pages every %llu refs (ceiling "
              "%.3f hit ratio) in one-shot filler traffic; LRU-2.\n\n",
              static_cast<unsigned long long>(kMetronomePages),
              static_cast<unsigned long long>(kPeriod),
              1.0 / (kPeriod / kMetronomePages));

  AsciiTable table({"frames", "history-blocks", "hit-ratio",
                    "history-blocks-used"});
  double best_ratio = 0.0;
  size_t best_frames = 0;
  double all_frames_ratio = 0.0;

  for (size_t frames : {66UL, 70UL, 74UL, 78UL, 82UL, 86UL, 90UL, 96UL}) {
    size_t history_blocks = (kBudgetPages - frames) * blocks_per_page;

    TraceWorkload gen(MetronomeMixTrace());
    LruKOptions options;
    options.k = 2;
    options.max_nonresident_history = history_blocks;
    if (history_blocks == 0) {
      // No budget for history at all: expire it immediately and let the
      // demon reclaim the blocks each period.
      options.retained_information_period = 1;
      options.purge_interval = 64;
    }
    LruKPolicy policy(options);

    SimOptions sim;
    sim.capacity = frames;
    sim.warmup_refs = 4 * kPeriod;
    sim.measure_refs = kTotalRefs - 4 * kPeriod;
    sim.track_classes = false;
    SimResult result = RunSimulation(policy, gen, sim);

    double ratio = result.HitRatio();
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_frames = frames;
    }
    if (frames == kBudgetPages) all_frames_ratio = ratio;
    table.AddRow({AsciiTable::Integer(frames),
                  AsciiTable::Integer(history_blocks),
                  AsciiTable::Fixed(ratio, 4),
                  AsciiTable::Integer(policy.NonResidentHistorySize())});
  }
  table.Print();

  std::printf("\nshape: the optimum is interior — sacrificing frames for "
              "history (best %.4f at %zu frames) beats spending the whole "
              "budget on frames (%.4f at %zu): %s\n",
              best_ratio, best_frames, all_frames_ratio, kBudgetPages,
              best_frames < kBudgetPages && best_ratio > all_frames_ratio + 0.02
                  ? "yes"
                  : "NO");
  return 0;
}
