// Substrate microbenchmarks: B+tree (both key types) and heap-file
// operation latencies through the buffer pool, complementing the policy-
// and pool-level micros. All data fits in the pool, so the numbers isolate
// the data-structure cost, not I/O.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "btree/btree.h"
#include "btree/string_btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/lru_k.h"
#include "heap/heap_file.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

constexpr uint64_t kKeys = 100000;

struct Fixture {
  Fixture() : pool(1024, &disk, std::make_unique<LruKPolicy>(LruKOptions{})) {}
  SimDiskManager disk;
  BufferPool pool;
};

void BM_BTreeInsertSequential(benchmark::State& state) {
  Fixture f;
  BTree tree(&f.pool);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(key, key + 1));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BTreeGetRandom(benchmark::State& state) {
  Fixture f;
  BTree tree(&f.pool);
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (!tree.Insert(k, k).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  RandomEngine rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.NextBounded(kKeys)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StringBTreeInsert(benchmark::State& state) {
  Fixture f;
  StringBTree tree(&f.pool);
  uint64_t i = 0;
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key-%012llu",
                  static_cast<unsigned long long>(i++));
    benchmark::DoNotOptimize(tree.Insert(key, i));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StringBTreeGetRandom(benchmark::State& state) {
  Fixture f;
  StringBTree tree(&f.pool);
  char key[32];
  for (uint64_t k = 0; k < kKeys; ++k) {
    std::snprintf(key, sizeof(key), "key-%012llu",
                  static_cast<unsigned long long>(k));
    if (!tree.Insert(key, k).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  RandomEngine rng(5);
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key-%012llu",
                  static_cast<unsigned long long>(rng.NextBounded(kKeys)));
    benchmark::DoNotOptimize(tree.Get(key));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HeapInsert(benchmark::State& state) {
  Fixture f;
  HeapFile heap(&f.pool);
  std::string row(120, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.Insert(row));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HeapGetRandom(benchmark::State& state) {
  Fixture f;
  HeapFile heap(&f.pool);
  std::vector<RecordId> rids;
  std::string row(120, 'r');
  for (int i = 0; i < 60000; ++i) {
    auto rid = heap.Insert(row);
    if (!rid.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    rids.push_back(*rid);
  }
  RandomEngine rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.Get(rids[rng.NextBounded(rids.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_BTreeInsertSequential);
BENCHMARK(BM_BTreeGetRandom);
BENCHMARK(BM_StringBTreeInsert);
BENCHMARK(BM_StringBTreeGetRandom);
BENCHMARK(BM_HeapInsert);
BENCHMARK(BM_HeapGetRandom);

}  // namespace
}  // namespace lruk

BENCHMARK_MAIN();
