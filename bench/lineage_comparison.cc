// The LRU-K lineage across workloads: the paper spawned a family of
// frequency-aware replacement policies — 2Q (Johnson & Shasha 1994,
// approximating LRU-2 in O(1)) and ARC (Megiddo & Modha 2003, self-tuning
// ghosts). This bench races the family, the classical baselines, and the
// oracles on all four workload shapes at a fixed buffer, answering the
// natural follow-up question: how much of the LRU-K idea survives in its
// descendants?

#include <cstdio>
#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/moving_hotspot.h"
#include "workload/synthetic_oltp.h"
#include "workload/two_pool.h"
#include "workload/zipfian_workload.h"

int main() {
  using namespace lruk;

  const std::vector<const char*> kPolicies = {"LRU", "LFU",   "LRU-2",
                                              "2Q",  "ARC",   "B0"};

  struct Scenario {
    const char* name;
    std::unique_ptr<ReferenceStringGenerator> gen;
    size_t capacity;
  };
  std::vector<Scenario> scenarios;
  {
    TwoPoolOptions t;
    t.seed = 19941;
    scenarios.push_back(
        {"two-pool(B=120)", std::make_unique<TwoPoolWorkload>(t), 120});
  }
  {
    ZipfianOptions z;
    z.seed = 19942;
    scenarios.push_back(
        {"zipf-80-20(B=100)", std::make_unique<ZipfianWorkload>(z), 100});
  }
  {
    SyntheticOltpOptions o;
    o.num_pages = 10000;
    o.seed = 19943;
    scenarios.push_back(
        {"oltp(B=400)", std::make_unique<SyntheticOltpWorkload>(o), 400});
  }
  {
    MovingHotspotOptions m;
    m.num_pages = 10000;
    m.hot_pages = 100;
    m.hot_probability = 0.9;
    m.epoch_length = 8000;
    m.shift = 2000;
    m.seed = 19944;
    scenarios.push_back({"moving-hotspot(B=150)",
                         std::make_unique<MovingHotspotWorkload>(m), 150});
  }

  std::printf("LRU-K lineage comparison (hit ratios; B0 = clairvoyant "
              "upper bound)\n\n");

  std::vector<std::string> headers = {"workload"};
  for (const char* p : kPolicies) headers.push_back(p);
  AsciiTable table(headers);

  bool lineage_beats_lru = true;
  size_t scenario_index = 0;
  for (Scenario& scenario : scenarios) {
    SimOptions sim;
    sim.capacity = scenario.capacity;
    sim.warmup_refs = 30000;
    sim.measure_refs = 120000;
    sim.track_classes = false;

    std::vector<std::string> row = {scenario.name};
    double lru = 0.0;
    double lru2 = 0.0;
    double two_q = 0.0;
    double arc = 0.0;
    for (const char* name : kPolicies) {
      auto result =
          SimulatePolicy(*ParsePolicyName(name), *scenario.gen, sim);
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", scenario.name, name,
                     result.status().ToString().c_str());
        return 1;
      }
      double hit = result->HitRatio();
      row.push_back(AsciiTable::Fixed(hit, 3));
      std::string_view n(name);
      if (n == "LRU") lru = hit;
      if (n == "LRU-2") lru2 = hit;
      if (n == "2Q") two_q = hit;
      if (n == "ARC") arc = hit;
    }
    table.AddRow(std::move(row));
    // The claim holds for stationary skew (the first three scenarios); on
    // fast-moving hot spots pure recency is already near-optimal and the
    // frequency machinery can only tie it (see ablation_adaptivity).
    if (scenario_index < 3 &&
        (lru2 <= lru || two_q <= lru || arc <= lru)) {
      lineage_beats_lru = false;
    }
    ++scenario_index;
  }

  table.Print();
  std::printf("\nshape: every frequency-aware descendant (LRU-2, 2Q, ARC) "
              "beats classical LRU on every stationary skewed workload: "
              "%s\n",
              lineage_beats_lru ? "yes" : "NO");
  std::printf("(on the fast-moving hot spot, recency is already the right "
              "signal and the family ties LRU within noise — the same "
              "responsiveness ordering ablation_adaptivity quantifies)\n");
  return 0;
}
