// Quickstart: the LRU-K policy as a standalone component, then the same
// policy driven through the simulation harness.
//
//   $ ./quickstart
//
// Part 1 replays the exact scenario from the paper's Section 2: two pages
// with different reference frequencies, where classical LRU evicts the
// wrong one and LRU-2 does not.
// Part 2 runs the policy over the Table 4.1 two-pool workload with one
// call and prints the hit ratios.

#include <cstdio>

#include "core/lru.h"
#include "core/lru_k.h"
#include "sim/simulator.h"
#include "workload/two_pool.h"

int main() {
  using namespace lruk;

  // ---------------------------------------------------------------
  // Part 1: the policy by hand.
  // ---------------------------------------------------------------
  std::printf("== Part 1: LRU-2 vs LRU on a two-page scenario ==\n\n");

  LruKOptions options;
  options.k = 2;  // Track the last two uncorrelated references.
  LruKPolicy lru2(options);
  LruPolicy lru;

  // Page 7 is hot (referenced twice); page 9 was just fetched once.
  for (ReplacementPolicy* policy :
       {static_cast<ReplacementPolicy*>(&lru2),
        static_cast<ReplacementPolicy*>(&lru)}) {
    policy->Admit(7, AccessType::kRead);         // t=1: fault 7 in
    policy->RecordAccess(7, AccessType::kRead);  // t=2: hit on 7
    policy->Admit(9, AccessType::kRead);         // t=3: fault 9 in
    auto victim = policy->Evict();               // Who goes?
    std::printf("%-6s evicts page %llu  %s\n",
                std::string(policy->Name()).c_str(),
                static_cast<unsigned long long>(*victim),
                *victim == 9 ? "(the one-shot page: correct)"
                             : "(the hot page! LRU's blind spot)");
  }

  // Backward K-distance introspection.
  LruKPolicy fresh(options);
  fresh.Admit(7, AccessType::kRead);
  fresh.RecordAccess(7, AccessType::kRead);
  fresh.Admit(9, AccessType::kRead);
  auto b7 = fresh.BackwardKDistance(7);
  auto b9 = fresh.BackwardKDistance(9);
  std::printf("\nb_t(7,2) = %s, b_t(9,2) = %s  "
              "(infinity means: fewer than K references known)\n",
              b7 ? std::to_string(*b7).c_str() : "infinity",
              b9 ? std::to_string(*b9).c_str() : "infinity");

  // ---------------------------------------------------------------
  // Part 2: the simulation harness.
  // ---------------------------------------------------------------
  std::printf("\n== Part 2: the Table 4.1 workload in four lines ==\n\n");

  TwoPoolOptions workload_options;  // N1=100 hot, N2=10000 cold pages.
  TwoPoolWorkload workload(workload_options);
  SimOptions sim;
  sim.capacity = 100;
  sim.warmup_refs = 1000;
  sim.measure_refs = 30000;

  for (const char* name : {"LRU", "LRU-2", "A0"}) {
    auto result = SimulatePolicy(*ParsePolicyName(name), workload, sim);
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s B=%zu  hit ratio %.3f   (hot pages resident at end: "
                "%llu of 100)\n",
                name, sim.capacity, result->HitRatio(),
                static_cast<unsigned long long>(
                    result->classes[0].resident_at_end));
  }
  std::printf("\nLRU-2 approaches the A0 oracle, which knows the true "
              "reference probabilities; LRU wastes half the buffer on "
              "pages with a 1/20000 reference probability.\n");
  return 0;
}
