// A string-keyed KV store: StringBTree (clustered index over byte keys)
// + HeapFile (row payloads) + BufferPool(LRU-2) + simulated disk. The
// Section 5 "post-relational" setting: keys are strings, rows vary in
// size, and the buffer manager has no hints — exactly where the paper
// argues a self-reliant policy is required.
//
//   $ ./string_kv_store
//
// Loads customer rows keyed by "cust-XXXXX", runs skewed lookups, a prefix
// scan, and updates, then prints buffer statistics.

#include <cstdio>
#include <memory>
#include <string>

#include "btree/string_btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/lru_k.h"
#include "heap/heap_file.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

int main() {
  using namespace lruk;

  SimDiskManager disk;
  LruKOptions policy_options;
  policy_options.k = 2;
  BufferPool pool(96, &disk, std::make_unique<LruKPolicy>(policy_options));
  StringBTree index(&pool);
  HeapFile rows(&pool);

  constexpr int kCustomers = 20000;
  std::printf("loading %d customers...\n", kCustomers);
  char key[32];
  char row[160];
  for (int i = 0; i < kCustomers; ++i) {
    std::snprintf(key, sizeof(key), "cust-%05d", i);
    std::snprintf(row, sizeof(row),
                  "{\"id\":%d,\"name\":\"customer %d\",\"balance\":%d}",
                  i, i, (i * 37) % 10000);
    auto rid = rows.Insert(row);
    if (!rid.ok()) return 1;
    if (!index.Insert(key, rid->Pack()).ok()) return 1;
  }
  std::printf("index entries: %llu, heap records: %llu\n\n",
              static_cast<unsigned long long>(index.Size()),
              static_cast<unsigned long long>(rows.Size()));

  // Skewed lookups: 80% of probes to the first 5% of customers.
  pool.ResetStats();
  RandomEngine rng(8128);
  int found = 0;
  for (int probe = 0; probe < 30000; ++probe) {
    int id = static_cast<int>(rng.NextBounded(
        rng.NextBernoulli(0.8) ? kCustomers / 20 : kCustomers));
    std::snprintf(key, sizeof(key), "cust-%05d", id);
    auto rid = index.Get(key);
    if (rid.ok() && rows.Get(RecordId::Unpack(*rid)).ok()) ++found;
  }
  std::printf("probes: 30000, rows fetched: %d\n", found);

  // Prefix scan: all customers in [cust-00100, cust-00104].
  std::printf("scan [cust-00100, cust-00104]:\n");
  Status scan = index.Scan(
      "cust-00100", "cust-00104",
      [&rows](std::string_view k, uint64_t packed) {
        auto record = rows.Get(RecordId::Unpack(packed));
        if (record.ok()) {
          std::printf("  %.*s -> %s\n", static_cast<int>(k.size()),
                      k.data(), record->c_str());
        }
        return true;
      });
  if (!scan.ok()) return 1;

  // Updates: bump the hot customers' balances in place.
  for (int i = 0; i < 1000; ++i) {
    std::snprintf(key, sizeof(key), "cust-%05d", i);
    auto rid = index.Get(key);
    if (!rid.ok()) return 1;
    std::snprintf(row, sizeof(row),
                  "{\"id\":%d,\"name\":\"customer %d\",\"balance\":%d}",
                  i, i, 424242);
    if (!rows.Update(RecordId::Unpack(*rid), row).ok()) return 1;
  }
  Status check = index.CheckInvariants();
  std::printf("\nafter 1000 updates, index invariants: %s\n",
              check.ok() ? "OK" : check.ToString().c_str());

  BufferPoolStats stats = pool.stats();
  std::printf("buffer pool: %.1f%% hit ratio, %llu evictions, %llu dirty "
              "write-backs\n",
              100.0 * stats.HitRatio(),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.dirty_writebacks));
  return 0;
}
