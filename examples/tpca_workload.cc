// A scaled-down TPC-A bank workload (the benchmark the paper's Example 1.1
// models — "references randomly chosen customer records through a
// clustered B-tree indexed key, cf. [TPC-A]"), run end-to-end on the real
// stack: four B+trees (accounts, tellers, branches, history) sharing one
// buffer pool over the simulated disk.
//
//   $ ./tpca_workload [transactions] [buffer-frames]
//
// Account records live on dedicated record pages (50 per 4 KB page); the
// accounts B+tree is a clustered index mapping account id -> record page.
// Each transaction probes one uniform random account through the index,
// updates its record page, updates the teller and branch balances, and
// appends a history row. The hot set is therefore the teller/branch
// trees, the account index (root + leaves), and the history tail; the
// 2,000 account record pages are cold — the exact index-vs-data
// discrimination problem the paper opens with. The run is repeated under
// LRU, LRU-2, 2Q and ARC and reports disk I/O per transaction.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/policy_factory.h"
#include "sim/table.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace {

constexpr uint64_t kBranches = 10;
constexpr uint64_t kTellersPerBranch = 10;
constexpr uint64_t kAccountsPerBranch = 10000;
constexpr uint64_t kRecordsPerPage = 50;  // ~80-byte account rows.

struct RunResult {
  double pool_hit_ratio = 0.0;
  double reads_per_txn = 0.0;
  double writes_per_txn = 0.0;
};

bool RunTpcA(const char* policy_name, int transactions, size_t frames,
             RunResult* out) {
  using namespace lruk;

  SimDiskManager disk;
  PolicyContext context;
  context.capacity = frames;
  auto policy = MakePolicy(*ParsePolicyName(policy_name), context);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s: %s\n", policy_name,
                 policy.status().ToString().c_str());
    return false;
  }
  BufferPool pool(frames, &disk, std::move(*policy));

  BTree accounts(&pool);
  BTree tellers(&pool);
  BTree branches(&pool);
  BTree history(&pool);

  for (uint64_t b = 0; b < kBranches; ++b) {
    if (!branches.Insert(b, 0).ok()) return false;
  }
  for (uint64_t t = 0; t < kBranches * kTellersPerBranch; ++t) {
    if (!tellers.Insert(t, 0).ok()) return false;
  }
  // Account record pages, then the clustered index over them.
  std::vector<PageId> record_pages;
  uint64_t total_accounts = kBranches * kAccountsPerBranch;
  for (uint64_t i = 0; i < total_accounts / kRecordsPerPage; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) return false;
    record_pages.push_back((*page)->id());
    if (!pool.UnpinPage((*page)->id(), true).ok()) return false;
  }
  for (uint64_t a = 0; a < total_accounts; ++a) {
    if (!accounts.Insert(a, record_pages[a / kRecordsPerPage]).ok()) {
      return false;
    }
  }

  disk.ResetStats();
  pool.ResetStats();

  RandomEngine rng(20260704);
  uint64_t history_id = 0;
  for (int i = 0; i < transactions; ++i) {
    uint64_t account = rng.NextBounded(kBranches * kAccountsPerBranch);
    uint64_t teller = rng.NextBounded(kBranches * kTellersPerBranch);
    uint64_t branch = teller / kTellersPerBranch;
    int64_t delta = rng.NextInRange(-99999, 99999);

    // Index probe, then update the account's row on its record page.
    auto record_page = accounts.Get(account);
    if (!record_page.ok()) return false;
    {
      auto guard = PageGuard::Fetch(pool, *record_page, AccessType::kWrite);
      if (!guard.ok()) return false;
      auto* rows = guard->AsMut<uint64_t>();
      rows[account % kRecordsPerPage] += static_cast<uint64_t>(delta);
    }

    auto tbal = tellers.Get(teller);
    if (!tbal.ok() ||
        !tellers.Update(teller, *tbal + static_cast<uint64_t>(delta)).ok()) {
      return false;
    }
    auto bbal = branches.Get(branch);
    if (!bbal.ok() ||
        !branches.Update(branch, *bbal + static_cast<uint64_t>(delta)).ok()) {
      return false;
    }
    if (!history.Insert(history_id++, account).ok()) return false;
  }
  if (!pool.FlushAll().ok()) return false;

  out->pool_hit_ratio = pool.stats().HitRatio();
  out->reads_per_txn =
      static_cast<double>(disk.stats().reads) / transactions;
  out->writes_per_txn =
      static_cast<double>(disk.stats().writes) / transactions;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lruk;

  int transactions = argc > 1 ? std::atoi(argv[1]) : 20000;
  size_t frames = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  if (transactions <= 0 || frames == 0) {
    std::fprintf(stderr, "usage: %s [transactions>0] [buffer-frames>0]\n",
                 argv[0]);
    return 2;
  }

  std::printf("TPC-A scaled: %llu branches, %llu tellers, %llu accounts; "
              "%d transactions, %zu buffer frames\n\n",
              static_cast<unsigned long long>(kBranches),
              static_cast<unsigned long long>(kBranches * kTellersPerBranch),
              static_cast<unsigned long long>(kBranches * kAccountsPerBranch),
              transactions, frames);

  AsciiTable table(
      {"policy", "pool-hit-ratio", "disk-reads/txn", "disk-writes/txn"});
  for (const char* name : {"LRU", "LRU-2", "2Q", "ARC"}) {
    RunResult result;
    if (!RunTpcA(name, transactions, frames, &result)) return 1;
    table.AddRow({name, AsciiTable::Fixed(result.pool_hit_ratio, 4),
                  AsciiTable::Fixed(result.reads_per_txn, 3),
                  AsciiTable::Fixed(result.writes_per_txn, 3)});
  }
  table.Print();
  std::printf("\nThe ~400 account-index leaves are re-referenced ~5x more "
              "often than the 2,000 record pages; frequency-aware policies "
              "keep the whole index resident and pay only the unavoidable "
              "cold record read, while LRU splits the buffer between "
              "them.\n");
  return 0;
}
