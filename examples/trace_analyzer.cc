// Trace analyzer: characterizes a page-reference trace the way the paper
// characterized the bank trace in Section 4.3, then recommends buffer and
// LRU-2 parameter settings from the measurements.
//
//   $ ./trace_analyzer <trace-file>     # analyze your own trace
//   $ ./trace_analyzer                  # demo on the synthetic OLTP trace
//
// Reports: skew quantiles ("X% of references access Y% of pages"), the
// interarrival distribution, the Five Minute Rule census (how many pages
// are worth buffering at a given re-reference horizon — the paper found
// 1400 and called that "the economically optimal configuration"), and
// hit-ratio spot checks at the recommended buffer size.

#include <cstdio>
#include <string>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "sim/trace_analysis.h"
#include "workload/synthetic_oltp.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace lruk;

  std::vector<PageRef> refs;
  std::string source;
  if (argc > 1) {
    auto loaded = ReadTraceFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    refs = std::move(*loaded);
    source = argv[1];
  } else {
    SyntheticOltpOptions options;
    options.num_pages = 25000;
    options.seed = 20260705;
    SyntheticOltpWorkload gen(options);
    refs = MaterializeRefs(gen, 470000);
    source = "synthetic OLTP demo (470k refs)";
  }

  TraceProfile profile = ProfileTrace(refs);
  std::printf("trace: %s\n", source.c_str());
  std::printf("  references: %llu (%.1f%% writes), distinct pages: %llu\n\n",
              static_cast<unsigned long long>(profile.total_references),
              100.0 * profile.write_references / profile.total_references,
              static_cast<unsigned long long>(profile.distinct_pages));

  std::printf("access skew (the paper reported 40%% -> 3%% and 90%% -> "
              "65%% for the bank trace):\n");
  for (double frac : {0.40, 0.50, 0.75, 0.90}) {
    std::printf("  %2.0f%% of references access %5.1f%% of the pages\n",
                100 * frac, 100 * AccessSkew(profile, frac));
  }

  auto pct = InterarrivalPercentiles(refs, {50, 90, 99});
  std::printf("\ninterarrival gaps (refs): p50=%llu p90=%llu p99=%llu\n",
              static_cast<unsigned long long>(pct[0]),
              static_cast<unsigned long long>(pct[1]),
              static_cast<unsigned long long>(pct[2]));

  // The Five Minute Rule census at several horizons. The paper's 100
  // seconds at ~130 refs/s is ~13000 references.
  std::printf("\nFive Minute Rule census (mean interarrival <= horizon H; "
              "the permissive any-gap census in parentheses):\n");
  AsciiTable census({"H (refs)", "buffer-worthy pages", "(any-gap)"});
  uint64_t economic = 0;
  for (uint64_t horizon : {1000u, 4000u, 13000u, 50000u}) {
    uint64_t pages = PagesWithMeanInterarrivalWithin(profile, horizon);
    if (horizon == 13000u) economic = pages;
    census.AddRow({AsciiTable::Integer(horizon), AsciiTable::Integer(pages),
                   AsciiTable::Integer(PagesReReferencedWithin(refs, horizon))});
  }
  census.Print();
  std::printf("\nrecommendation (paper Section 4.3 logic): the economic "
              "buffer size at the ~100s horizon is ~%llu pages; a "
              "Retained Information Period of ~2x the horizon (26000 "
              "refs) preserves LRU-2's view of exactly those pages.\n",
              static_cast<unsigned long long>(economic));

  // Spot-check hit ratios at the recommended size.
  size_t capacity = economic > 0 ? economic : 100;
  TraceWorkload gen(std::move(refs));
  SimOptions sim;
  sim.capacity = capacity;
  sim.warmup_refs = gen.size() / 5;
  sim.measure_refs = gen.size() - sim.warmup_refs;
  sim.track_classes = false;
  std::printf("\nhit ratios at the economic buffer size (%zu pages):\n",
              capacity);
  for (const char* name : {"LRU", "LRU-2", "LFU"}) {
    auto result = SimulatePolicy(*ParsePolicyName(name), gen, sim);
    if (!result.ok()) return 1;
    std::printf("  %-6s %.3f\n", name, result->HitRatio());
  }
  return 0;
}
