// Sharded quickstart: the same buffer-pool code running over the
// single-latch BufferPool and the ShardedBufferPool, via PoolInterface.
//
//   $ ./sharded_quickstart
//
// Part 1 builds a 4-shard pool with per-shard LRU-2, shows how pages are
// routed to shards, and runs multi-threaded Zipfian traffic against it.
// Part 2 swaps the sharded pool under a PageGuard-using helper that was
// written against PoolInterface — no code changes on the consumer side.

#include <cstdio>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/page_guard.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/policy_factory.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace {

// Written once against PoolInterface; works over either pool.
lruk::Status Touch(lruk::PoolInterface& pool, lruk::PageId p) {
  auto guard = lruk::PageGuard::Fetch(pool, p, lruk::AccessType::kWrite);
  if (!guard.ok()) return guard.status();
  ++guard->AsMut<uint64_t>()[0];
  return lruk::Status::Ok();  // Guard unpins (dirty) on scope exit.
}

}  // namespace

int main() {
  using namespace lruk;

  // ---------------------------------------------------------------
  // Part 1: constructing and driving a sharded pool.
  // ---------------------------------------------------------------
  std::printf("== Part 1: a 4-shard pool with per-shard LRU-2 ==\n\n");

  SimDiskManager disk;  // Internally latched: shards share it safely.
  auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
  if (!factory.ok()) {
    std::fprintf(stderr, "factory: %s\n", factory.status().ToString().c_str());
    return 1;
  }
  ShardedBufferPool pool(/*capacity=*/256, /*num_shards=*/4, &disk, *factory);

  constexpr uint64_t kDbPages = 1024;
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < kDbPages; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) return 1;
    pages.push_back((*page)->id());
    (void)pool.UnpinPage((*page)->id(), false);
  }
  std::printf("page ids 0..4 land in shards:");
  for (PageId p = 0; p < 5; ++p) {
    std::printf(" %zu", pool.ShardOf(p));
  }
  std::printf("  (hashed, not modulo — dense ranges spread out)\n");

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RandomEngine rng(42 + static_cast<uint64_t>(t));
      RecursiveSkewDistribution zipf(0.8, 0.2, kDbPages);
      for (int i = 0; i < 20000; ++i) {
        (void)Touch(pool, pages[zipf.Sample(rng) - 1]);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  BufferPoolStats total = pool.stats();
  std::printf("\n%d threads x 20000 Zipfian touches: aggregate hit ratio "
              "%.3f\n",
              kThreads, total.HitRatio());
  std::printf("per-shard breakdown (each shard runs its own LRU-2):\n");
  size_t i = 0;
  for (const BufferPoolStats& s : pool.ShardStats()) {
    std::printf("  shard %zu: %llu hits, %llu misses, %llu evictions\n", i++,
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.evictions));
  }

  // ---------------------------------------------------------------
  // Part 2: one consumer, either pool.
  // ---------------------------------------------------------------
  std::printf("\n== Part 2: the same helper over the single-latch pool ==\n\n");

  SimDiskManager single_disk;
  auto policy = MakePolicy(PolicyConfig::LruK(2), PolicyContext{});
  if (!policy.ok()) return 1;
  BufferPool single(/*capacity=*/256, &single_disk, std::move(*policy));
  auto page = single.NewPage();
  if (!page.ok()) return 1;
  PageId p = (*page)->id();
  (void)single.UnpinPage(p, false);
  for (int n = 0; n < 3; ++n) {
    if (!Touch(single, p).ok()) return 1;
  }
  auto check = single.FetchPage(p);
  if (!check.ok()) return 1;
  std::printf("Touch() ran unchanged against BufferPool: counter = %llu\n",
              static_cast<unsigned long long>((*check)->As<uint64_t>()[0]));
  (void)single.UnpinPage(p, false);

  std::printf("\nPick BufferPool for single-threaded exactness, "
              "ShardedBufferPool when threads contend on the latch "
              "(see DESIGN.md, \"Concurrency & sharding\").\n");
  return 0;
}
