// Trace tooling: capture a workload into the text trace format, reload it,
// and replay the identical reference string against several policies —
// the workflow for users who want to evaluate LRU-K on their own traces
// (the role the bank trace plays in the paper's Section 4.3).
//
//   $ ./trace_replay capture <file> [refs]   # synthesize + save a trace
//   $ ./trace_replay replay  <file> [buffer] # simulate policies over it
//   $ ./trace_replay                          # capture + replay a demo
//
// The trace format is one reference per line: "<page-id> [R|W]".

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/synthetic_oltp.h"
#include "workload/trace.h"

namespace {

int Capture(const std::string& path, uint64_t refs) {
  using namespace lruk;
  SyntheticOltpOptions options;
  options.num_pages = 5000;
  SyntheticOltpWorkload gen(options);
  auto materialized = MaterializeRefs(gen, refs);
  Status status = WriteTraceFile(path, materialized);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("captured %llu references to %s\n",
              static_cast<unsigned long long>(refs), path.c_str());
  return 0;
}

int Replay(const std::string& path, size_t buffer) {
  using namespace lruk;
  auto refs = ReadTraceFile(path);
  if (!refs.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 refs.status().ToString().c_str());
    return 1;
  }
  TraceWorkload gen(std::move(*refs));
  std::printf("replaying %zu references over %llu pages, buffer=%zu\n\n",
              gen.size(), static_cast<unsigned long long>(gen.NumPages()),
              buffer);

  SimOptions sim;
  sim.capacity = buffer;
  sim.warmup_refs = gen.size() / 5;
  sim.measure_refs = gen.size() - sim.warmup_refs;

  AsciiTable table({"policy", "hit-ratio", "misses"});
  for (const char* name : {"LRU", "LRU-2", "LFU", "2Q", "ARC", "B0"}) {
    auto result = SimulatePolicy(*ParsePolicyName(name), gen, sim);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({result->policy_name,
                  AsciiTable::Fixed(result->HitRatio(), 4),
                  AsciiTable::Integer(result->misses)});
  }
  table.Print();
  std::printf("\nB0 is Belady's clairvoyant optimum: the headroom above "
              "it is unreachable for any online policy.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "capture") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s capture <file> [refs]\n", argv[0]);
      return 2;
    }
    uint64_t refs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;
    return Capture(argv[2], refs);
  }
  if (mode == "replay") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s replay <file> [buffer]\n", argv[0]);
      return 2;
    }
    size_t buffer = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200;
    return Replay(argv[2], buffer);
  }
  // Demo: capture then replay a temporary trace.
  std::string path = "/tmp/lruk_demo_trace.txt";
  if (int rc = Capture(path, 100000); rc != 0) return rc;
  return Replay(path, 200);
}
