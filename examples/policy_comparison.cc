// Compare replacement policies on a chosen workload from the command line.
//
//   $ ./policy_comparison [workload] [buffer] [refs] [policy...]
//
//   workload: twopool | zipf | uniform | scan | hotspot | oltp
//   buffer:   buffer size in pages            (default 100)
//   refs:     measured references             (default 100000)
//   policy:   any of LRU, LRU-2, LRU-3, ..., LFU, FIFO, CLOCK, GCLOCK,
//             LRD, MRU, RANDOM, 2Q, A0, B0   (default: a standard set)
//
// Example:
//   $ ./policy_comparison zipf 200 50000 LRU LRU-2 2Q B0

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workload/moving_hotspot.h"
#include "workload/sequential.h"
#include "workload/synthetic_oltp.h"
#include "workload/two_pool.h"
#include "workload/uniform_workload.h"
#include "workload/zipfian_workload.h"

namespace {

std::unique_ptr<lruk::ReferenceStringGenerator> MakeWorkload(
    const std::string& name) {
  using namespace lruk;
  if (name == "twopool") {
    return std::make_unique<TwoPoolWorkload>(TwoPoolOptions{});
  }
  if (name == "zipf") {
    return std::make_unique<ZipfianWorkload>(ZipfianOptions{});
  }
  if (name == "uniform") {
    return std::make_unique<UniformWorkload>(UniformOptions{});
  }
  if (name == "scan") {
    MixedScanOptions options;
    options.scan_initially_active = true;
    return std::make_unique<MixedScanWorkload>(options);
  }
  if (name == "hotspot") {
    return std::make_unique<MovingHotspotWorkload>(MovingHotspotOptions{});
  }
  if (name == "oltp") {
    return std::make_unique<SyntheticOltpWorkload>(SyntheticOltpOptions{});
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lruk;

  std::string workload_name = argc > 1 ? argv[1] : "twopool";
  size_t buffer = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  uint64_t refs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;
  std::vector<std::string> policy_names;
  for (int i = 4; i < argc; ++i) policy_names.push_back(argv[i]);
  if (policy_names.empty()) {
    policy_names = {"LRU", "LRU-2", "LRU-3", "LFU", "CLOCK", "2Q", "RANDOM"};
  }

  auto workload = MakeWorkload(workload_name);
  if (workload == nullptr || buffer == 0 || refs == 0) {
    std::fprintf(stderr,
                 "usage: %s [twopool|zipf|uniform|scan|hotspot|oltp] "
                 "[buffer>0] [refs>0] [policy...]\n",
                 argv[0]);
    return 2;
  }

  SimOptions sim;
  sim.capacity = buffer;
  sim.warmup_refs = refs / 4;
  sim.measure_refs = refs;

  std::printf("workload=%s  pages=%llu  buffer=%zu  refs=%llu "
              "(+%llu warmup)\n\n",
              workload_name.c_str(),
              static_cast<unsigned long long>(workload->NumPages()), buffer,
              static_cast<unsigned long long>(refs),
              static_cast<unsigned long long>(sim.warmup_refs));

  AsciiTable table({"policy", "hit-ratio", "misses", "evictions"});
  for (const std::string& name : policy_names) {
    auto config = ParsePolicyName(name);
    if (!config) {
      std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
      return 2;
    }
    auto result = SimulatePolicy(*config, *workload, sim);
    if (!result.ok()) {
      std::printf("%-8s (skipped: %s)\n", name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    table.AddRow({result->policy_name,
                  AsciiTable::Fixed(result->HitRatio(), 4),
                  AsciiTable::Integer(result->misses),
                  AsciiTable::Integer(result->evictions)});
  }
  table.Print();
  return 0;
}
