// A small persistent database: FileDiskManager + BufferPool running LRU-2
// + the disk B+tree as a clustered index + the slotted-page heap file for
// the row payloads — the full substrate stack the paper's algorithm is
// designed to serve.
//
//   $ ./btree_database [path]
//
// Loads 50,000 key-value pairs, runs point lookups, a range scan and
// deletes, then reports buffer and disk statistics. The pool is much
// smaller than the tree, so the run actually pages against the file; the
// FileDiskManager + `root` re-attach constructor argument are the pieces a
// persistent deployment would use to survive restarts.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/lru_k.h"
#include "heap/heap_file.h"
#include "storage/file_disk_manager.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace lruk;

  std::string path = argc > 1 ? argv[1] : "/tmp/lruk_btree_example.db";
  std::remove(path.c_str());  // Fresh demo database each run.

  FileDiskManager disk(path);
  if (!disk.Valid()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  LruKOptions policy_options;
  policy_options.k = 2;
  BufferPool pool(64, &disk, std::make_unique<LruKPolicy>(policy_options));
  BTree tree(&pool);
  HeapFile heap(&pool);

  constexpr uint64_t kRows = 50000;
  std::printf("loading %llu rows into %s ...\n",
              static_cast<unsigned long long>(kRows), path.c_str());
  char row[64];
  for (uint64_t k = 0; k < kRows; ++k) {
    std::snprintf(row, sizeof(row), "customer-%llu balance=%llu",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(k * k % 97));
    auto rid = heap.Insert(row);
    if (!rid.ok()) return 1;
    Status status = tree.Insert(k, rid->Pack());
    if (!status.ok()) {
      std::fprintf(stderr, "insert %llu: %s\n",
                   static_cast<unsigned long long>(k),
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("root page %llu, %llu keys, tree pages: %llu, heap pages: "
              "%llu\n",
              static_cast<unsigned long long>(tree.RootPageId()),
              static_cast<unsigned long long>(tree.Size()),
              static_cast<unsigned long long>(*tree.CountPages()),
              static_cast<unsigned long long>(*heap.CountPages()));

  // Point lookups with a skewed pattern (the hot head gets most probes).
  RandomEngine rng(2026);
  uint64_t found = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.NextBounded(rng.NextBernoulli(0.8) ? kRows / 20
                                                          : kRows);
    auto rid = tree.Get(key);
    if (rid.ok() && heap.Get(RecordId::Unpack(*rid)).ok()) ++found;
  }
  std::printf("probes: 20000, rows fetched: %llu\n",
              static_cast<unsigned long long>(found));

  // Range scan: index window, then row fetches through the heap.
  auto range = tree.Range(1000, 1004);
  if (range.ok()) {
    std::printf("scan [1000,1004]:\n");
    for (auto [k, packed] : *range) {
      auto record = heap.Get(RecordId::Unpack(packed));
      if (record.ok()) {
        std::printf("  %llu -> %s\n", static_cast<unsigned long long>(k),
                    record->c_str());
      }
    }
  }

  // Delete a stripe (index entry + heap row) and verify.
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t key = k * 7 % kRows;
    auto rid = tree.Get(key);
    if (!rid.ok() || !heap.Delete(RecordId::Unpack(*rid)).ok() ||
        !tree.Delete(key).ok()) {
      std::fprintf(stderr, "delete failed\n");
      return 1;
    }
  }
  Status check = tree.CheckInvariants();
  std::printf("after 1000 deletes: %llu keys, invariants: %s\n",
              static_cast<unsigned long long>(tree.Size()),
              check.ok() ? "OK" : check.ToString().c_str());

  if (!pool.FlushAll().ok()) return 1;
  std::printf("\nbuffer pool: %llu hits / %llu misses (%.1f%% hit ratio), "
              "%llu evictions, %llu dirty write-backs\n",
              static_cast<unsigned long long>(pool.stats().hits),
              static_cast<unsigned long long>(pool.stats().misses),
              100.0 * pool.stats().HitRatio(),
              static_cast<unsigned long long>(pool.stats().evictions),
              static_cast<unsigned long long>(pool.stats().dirty_writebacks));
  std::printf("disk: %llu reads, %llu writes, %llu pages allocated\n",
              static_cast<unsigned long long>(disk.stats().reads),
              static_cast<unsigned long long>(disk.stats().writes),
              static_cast<unsigned long long>(disk.NumAllocatedPages()));
  return 0;
}
